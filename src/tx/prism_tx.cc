#include "src/tx/prism_tx.h"

#include <algorithm>

#include "src/common/hash.h"

namespace prism::tx {

using core::Chain;
using core::Op;
using core::OpCode;

PrismTxShard::PrismTxShard(net::Fabric* fabric, net::HostId host,
                           PrismTxOptions opts)
    : opts_(opts) {
  PRISM_CHECK_GT(opts.buffers_per_shard, opts.keys_per_shard);
  const uint64_t meta_bytes = opts.keys_per_shard * 32;
  const uint64_t buf_size = 16 + opts.value_size;  // [C | key | value]
  const uint64_t pool_bytes = opts.buffers_per_shard * buf_size;
  mem_ = std::make_unique<rdma::AddressSpace>(
      meta_bytes + pool_bytes + core::PrismServer::kOnNicBytes + (1 << 20));
  prism_ = std::make_unique<core::PrismServer>(fabric, host, opts.deployment,
                                               mem_.get());
  auto region =
      mem_->CarveAndRegister(meta_bytes + pool_bytes, rdma::kRemoteAll);
  PRISM_CHECK(region.ok()) << region.status();
  region_ = *region;
  meta_base_ = region_.base;
  pool_base_ = region_.base + meta_bytes;
  freelist_ = prism_->freelists().CreateQueue(buf_size);
  // Buffers [0, keys_per_shard) are reserved for the bulk-load phase; the
  // rest feed ALLOCATE.
  for (uint64_t i = opts.keys_per_shard; i < opts.buffers_per_shard; ++i) {
    prism_->PostBuffers(freelist_, {pool_base_ + i * buf_size});
  }
}

Status PrismTxShard::LoadKey(uint64_t slot, uint64_t key, ByteView value) {
  if (slot >= opts_.keys_per_shard) return OutOfRange("slot out of range");
  if (value.size() > opts_.value_size) return InvalidArgument("value size");
  if (mem_->LoadWord(ptr_addr(slot)) != 0) {
    return AlreadyExists("slot already loaded");
  }
  const uint64_t buf_size = 16 + opts_.value_size;
  PRISM_CHECK_LT(next_load_buffer_, opts_.keys_per_shard);
  rdma::Addr buf = pool_base_ + next_load_buffer_++ * buf_size;
  // Load version: timestamp 1 (clients start their clocks above it).
  const uint64_t c0 = Timestamp{1, 0}.Packed();
  mem_->StoreWord(buf, c0);
  mem_->StoreWord(buf + 8, key);
  mem_->Store(buf + 16, value);
  mem_->StoreWord(pr_addr(slot), c0);
  mem_->StoreWord(pw_addr(slot), c0);
  mem_->StoreWord(c_addr(slot), c0);
  mem_->StoreWord(ptr_addr(slot), buf);
  return OkStatus();
}

PrismTxCluster::PrismTxCluster(net::Fabric* fabric, int n_shards,
                               PrismTxOptions opts)
    : opts_(opts) {
  for (int i = 0; i < n_shards; ++i) {
    net::HostId host = fabric->AddHost("tx-shard-" + std::to_string(i));
    shards_.push_back(std::make_unique<PrismTxShard>(fabric, host, opts));
  }
}

std::pair<int, uint64_t> PrismTxCluster::Locate(uint64_t key) const {
  // Dense keys (the YCSB setup) map collision-free: shard by low bits, slot
  // by the quotient — the paper's "collisionless hash function" (§6.2).
  const int shard = static_cast<int>(key % shards_.size());
  const uint64_t slot = (key / shards_.size()) % opts_.keys_per_shard;
  return {shard, slot};
}

Status PrismTxCluster::LoadKey(uint64_t key, ByteView value) {
  auto [shard, slot] = Locate(key);
  return shards_[static_cast<size_t>(shard)]->LoadKey(slot, key, value);
}

PrismTxClient::PrismTxClient(net::Fabric* fabric, net::HostId self,
                             PrismTxCluster* cluster, uint16_t client_id)
    : fabric_(fabric),
      self_(self),
      cluster_(cluster),
      prism_(fabric, self),
      client_id_(client_id) {
  for (int i = 0; i < cluster->n_shards(); ++i) {
    auto scratch =
        cluster->shard(i).prism().AllocateScratch(16 * kScratchSlots);
    PRISM_CHECK(scratch.ok()) << scratch.status();
    scratch_.push_back(*scratch);
    reclaim_.push_back(std::make_unique<core::ReclaimClient>(
        fabric, self, &cluster->shard(i).prism(),
        cluster->options().reclaim_batch));
  }
}

void PrismTxClient::FlushReclaim() {
  for (auto& r : reclaim_) r->Flush();
}

sim::Task<Result<Bytes>> PrismTxClient::Read(Transaction& txn, uint64_t key) {
  PRISM_CHECK(txn.active);
  // Read-your-writes from the local write buffer.
  for (const auto& w : txn.write_set) {
    if (w.key == key) {
      Bytes copy = w.value;
      co_return copy;
    }
  }
  auto [shard_idx, slot] = cluster_->Locate(key);
  PrismTxShard& shard = cluster_->shard(shard_idx);
  const uint64_t read_len = 16 + cluster_->options().value_size;
  // One round trip, two chained ops: read the [C|addr] metadata window, then
  // indirect-read the buffer. RC = max(slot C, buffer C): after an abort the
  // slot C is bumped past the stalled PW ("update C to TS", §8.2), and
  // taking the slot C as the read version is what unsticks later
  // validations (RC == PW again). The value is still the latest committed
  // version as of that RC — the bump happened precisely because no install
  // occurred.
  Chain chain;
  chain.push_back(Op::Read(shard.rkey(), shard.c_addr(slot), 16));
  chain.push_back(Op::IndirectRead(shard.rkey(), shard.ptr_addr(slot),
                                   read_len));
  auto r = co_await prism_.Execute(&shard.prism(), std::move(chain));
  if (!r.ok()) co_return r.status();
  const bool record = history_ != nullptr &&
                      txn.history_id != Transaction::kNoHistory;
  const core::OpResult& meta = (*r)[0];
  const core::OpResult& buf = (*r)[1];
  if (!meta.status.ok() || !buf.status.ok()) {
    if (record) history_->RecordRead(txn.history_id, key, check::kAbsent);
    co_return NotFound("key not loaded");
  }
  if (buf.data.size() < 16 || LoadU64(buf.data.data() + 8) != key) {
    if (record) history_->RecordRead(txn.history_id, key, check::kAbsent);
    co_return NotFound("slot holds a different key");
  }
  const uint64_t slot_c = LoadU64(meta.data.data());
  const uint64_t buffer_c = LoadU64(buf.data.data());
  const uint64_t rc = std::max(slot_c, buffer_c);
  logical_clock_ =
      std::max(logical_clock_, Timestamp::FromPacked(rc).time);
  txn.read_set.push_back({key, rc});
  Bytes value(buf.data.begin() + 16, buf.data.end());
  if (record) history_->RecordRead(txn.history_id, key, check::IdOf(value));
  co_return std::move(value);
}

void PrismTxClient::Write(Transaction& txn, uint64_t key, Bytes value) {
  PRISM_CHECK(txn.active);
  PRISM_CHECK_LE(value.size(), cluster_->options().value_size);
  for (auto& w : txn.write_set) {
    if (w.key == key) {
      w.value = std::move(value);
      return;
    }
  }
  txn.write_set.push_back({key, std::move(value)});
}

sim::Task<Status> PrismTxClient::AbortCleanup(
    const std::vector<WritePrep>& preps, Timestamp ts) {
  // §8.2: leave PR/PW conservatively high, but bump C for keys whose write
  // check passed, so concurrent readers are not blocked waiting on RC == PW.
  int pending = 0;
  for (const auto& p : preps) pending += p.valid ? 1 : 0;
  if (pending == 0) co_return OkStatus();
  auto done = std::make_shared<sim::Quorum>(fabric_->sim(self_), pending,
                                            pending);
  for (const auto& p : preps) {
    if (!p.valid) continue;
    auto [shard_idx, slot] = cluster_->Locate(p.key);
    PrismTxShard* shard = &cluster_->shard(shard_idx);
    const uint64_t key_slot = slot;
    const uint64_t packed = ts.Packed();
    sim::Spawn([this, shard, key_slot, packed, done]() -> sim::Task<void> {
      // CAS_GT on the [C|addr] window, swapping only C.
      Op bump = Op::MaskedCas(shard->rkey(), shard->c_addr(key_slot),
                              BytesOfU64Pair(packed, 0), FieldMask(16, 0, 8),
                              FieldMask(16, 0, 8), rdma::CasCompare::kGreater);
      auto r = co_await prism_.ExecuteOne(&shard->prism(), std::move(bump));
      done->Arrive(r.ok());
    });
  }
  co_await done->Wait();
  co_return OkStatus();
}

sim::Task<Status> PrismTxClient::Commit(Transaction& txn) {
  PRISM_CHECK(txn.active);
  txn.active = false;
  const bool record = history_ != nullptr &&
                      txn.history_id != Transaction::kNoHistory;
  if (record) {
    for (const auto& w : txn.write_set) {
      history_->RecordWrite(txn.history_id, w.key, check::IdOf(w.value));
    }
  }
  if (txn.write_set.empty() && txn.read_set.empty()) {
    commits_++;
    if (record) history_->EndTxn(txn.history_id, check::TxOutcome::kCommitted);
    co_return OkStatus();
  }

  // Choose TS > every RC observed (§8.2 / Meerkat).
  logical_clock_++;
  for (const auto& r : txn.read_set) {
    logical_clock_ = std::max(logical_clock_,
                              Timestamp::FromPacked(r.rc).time + 1);
  }
  const Timestamp ts{logical_clock_, client_id_};
  const uint64_t packed_ts = ts.Packed();

  // Partition keys: a key both read and written gets a single *combined*
  // validation CAS (below); read-only keys get read validation; write-only
  // keys get plain write validation.
  std::map<uint64_t, uint64_t> rmw_rc;  // write-set keys that were read
  for (const auto& w : txn.write_set) {
    for (const auto& r : txn.read_set) {
      if (r.key == w.key) rmw_rc[w.key] = r.rc;
    }
  }

  // ---- prepare: read validation (one CAS per read-only key, parallel) ----
  std::vector<Transaction::ReadEntry> read_only;
  for (const auto& r : txn.read_set) {
    if (rmw_rc.find(r.key) == rmw_rc.end()) read_only.push_back(r);
  }
  if (!read_only.empty()) {
    const int n_reads = static_cast<int>(read_only.size());
    auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_), n_reads,
                                                n_reads);
    auto ok_flag = std::make_shared<bool>(true);
    for (const auto& entry : read_only) {
      auto [shard_idx, slot] = cluster_->Locate(entry.key);
      PrismTxShard* shard = &cluster_->shard(shard_idx);
      const uint64_t rc = entry.rc;
      const uint64_t key_slot = slot;
      sim::Spawn([this, shard, key_slot, rc, packed_ts, quorum,
                  ok_flag]() -> sim::Task<void> {
        // Window [PR|PW] at pr_addr. Compare (RC|TS) > (PW|PR): PW (offset
        // 8) is most significant, so this is RC==PW && TS>PR (RC>PW cannot
        // happen). Swap PR := TS.
        Op cas = Op::MaskedCas(shard->rkey(), shard->pr_addr(key_slot),
                               BytesOfU64Pair(packed_ts, rc),
                               FieldMask(16, 0, 16),   // compare both fields
                               FieldMask(16, 0, 8),    // swap PR only
                               rdma::CasCompare::kGreater);
        auto r = co_await prism_.ExecuteOne(&shard->prism(), std::move(cas));
        if (!r.ok() || !r->status.ok()) {
          *ok_flag = false;
          quorum->Arrive(true);
          co_return;
        }
        if (!r->cas_swapped) {
          // Distinguish benign "PR already ≥ TS" from a conflicting
          // prepared writer via the returned old value (§8.2).
          const uint64_t old_pw = LoadU64(r->data.data() + 8);
          if (old_pw != rc) *ok_flag = false;  // prepared/committed writer
        }
        quorum->Arrive(true);
      });
    }
    co_await quorum->Wait();
    if (!*ok_flag) {
      aborts_++;
      // Validation failure precedes any install: no write is visible.
      if (record) history_->EndTxn(txn.history_id, check::TxOutcome::kAborted);
      co_return Aborted("read validation failed");
    }
  }

  // ---- prepare: write validation ----
  auto preps = std::make_shared<std::vector<WritePrep>>();
  preps->reserve(txn.write_set.size());
  for (const auto& w : txn.write_set) preps->push_back({w.key, false, false});
  if (!txn.write_set.empty()) {
    const int n_writes = static_cast<int>(txn.write_set.size());
    auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                                n_writes, n_writes);
    for (size_t i = 0; i < txn.write_set.size(); ++i) {
      auto [shard_idx, slot] = cluster_->Locate(txn.write_set[i].key);
      PrismTxShard* shard = &cluster_->shard(shard_idx);
      const uint64_t key_slot = slot;
      auto rmw_it = rmw_rc.find(txn.write_set[i].key);
      const bool is_rmw = rmw_it != rmw_rc.end();
      const uint64_t rc = is_rmw ? rmw_it->second : 0;
      sim::Spawn([this, shard, key_slot, packed_ts, quorum, preps, i, is_rmw,
                  rc]() -> sim::Task<void> {
        Op cas;
        if (is_rmw) {
          // Combined read+write validation for a key both read and written:
          // compare (RC|TS) > (PW|PR) — i.e. RC == PW (no prepared writer
          // since our read) and TS > PR — and swap both PR and PW to TS.
          // Needs the separate compare/swap operand form: the compare wants
          // RC in the PW position while the swap writes TS there.
          cas = Op::CompareSwapCas(shard->rkey(), shard->pr_addr(key_slot),
                                   /*compare=*/BytesOfU64Pair(packed_ts, rc),
                                   /*swap=*/BytesOfU64Pair(packed_ts,
                                                           packed_ts),
                                   FieldMask(16, 0, 16),  // compare both
                                   FieldMask(16, 0, 16),  // swap both
                                   rdma::CasCompare::kGreater);
        } else {
          // Blind write: compare TS > PW (PW field only), swap PW := TS.
          // The returned old value carries PR, checked below (§8.2 notes
          // the optimistic PW bump is safe).
          cas = Op::MaskedCas(shard->rkey(), shard->pr_addr(key_slot),
                              BytesOfU64Pair(0, packed_ts),
                              FieldMask(16, 8, 8),  // compare PW only (GT)
                              FieldMask(16, 8, 8),  // swap PW only
                              rdma::CasCompare::kGreater);
        }
        auto r = co_await prism_.ExecuteOne(&shard->prism(), std::move(cas));
        if (r.ok() && r->status.ok() && r->cas_swapped) {
          (*preps)[i].pw_bumped = true;
          if (is_rmw) {
            (*preps)[i].valid = true;  // TS > PR is part of the compare
          } else {
            const uint64_t old_pr = LoadU64(r->data.data());
            (*preps)[i].valid = packed_ts > old_pr;
          }
        }
        quorum->Arrive(true);
      });
    }
    co_await quorum->Wait();
  }
  bool all_valid = true;
  for (const auto& p : *preps) all_valid = all_valid && p.valid;
  if (!all_valid) {
    aborts_++;
    co_await AbortCleanup(*preps, ts);
    // PR/PW/C bumps never expose a value: no write is visible.
    if (record) history_->EndTxn(txn.history_id, check::TxOutcome::kAborted);
    co_return Aborted("write validation failed");
  }

  // ---- commit: install every write with the PRISM-RS chain ----
  if (!txn.write_set.empty()) {
    const int n_writes = static_cast<int>(txn.write_set.size());
    auto quorum = std::make_shared<sim::Quorum>(fabric_->sim(self_),
                                                n_writes, n_writes);
    auto ok_flag = std::make_shared<bool>(true);
    std::map<int, uint64_t> scratch_used;  // per-shard slot cursor
    for (const auto& w : txn.write_set) {
      auto [shard_idx, slot] = cluster_->Locate(w.key);
      PrismTxShard* shard = &cluster_->shard(shard_idx);
      const uint64_t scratch_slot = scratch_used[shard_idx]++;
      PRISM_CHECK_LT(scratch_slot, kScratchSlots)
          << "too many writes to one shard in a single transaction";
      const rdma::Addr tmp =
          scratch_[static_cast<size_t>(shard_idx)] + 16 * scratch_slot;
      const size_t reclaim_idx = static_cast<size_t>(shard_idx);
      // Buffer payload [TS | key | value].
      auto payload = std::make_shared<Bytes>(16 + w.value.size());
      StoreU64(payload->data(), packed_ts);
      StoreU64(payload->data() + 8, w.key);
      std::memcpy(payload->data() + 16, w.value.data(), w.value.size());
      const uint64_t key_slot = slot;
      sim::Spawn([this, shard, key_slot, packed_ts, tmp, payload, quorum,
                  ok_flag, reclaim_idx]() -> sim::Task<void> {
        Chain chain;
        chain.push_back(
            Op::Write(shard->rkey(), tmp, BytesOfU64(packed_ts)));
        chain.push_back(Op::Allocate(shard->rkey(), shard->freelist(),
                                     *payload)
                            .RedirectTo(tmp + 8)
                            .Conditional());
        Op install;
        install.code = OpCode::kCas;
        install.rkey = shard->rkey();
        install.addr = shard->c_addr(key_slot);
        install.data = BytesOfU64(tmp);
        install.data_indirect = true;     // operand = [TS | addr'] at tmp
        install.cmp_mask = FieldMask(16, 0, 8);   // compare C (GT)
        install.swap_mask = FieldMask(16, 0, 16);  // swap C and addr
        install.cas_mode = rdma::CasCompare::kGreater;
        install.conditional = true;
        chain.push_back(std::move(install));
        auto r = co_await prism_.Execute(&shard->prism(), std::move(chain));
        if (!r.ok()) {
          *ok_flag = false;
          quorum->Arrive(true);
          co_return;
        }
        const core::OpResult& alloc = (*r)[1];
        const core::OpResult& cas = (*r)[2];
        if (!alloc.executed || !alloc.status.ok() || !cas.executed ||
            !cas.status.ok()) {
          *ok_flag = false;
          quorum->Arrive(true);
          co_return;
        }
        if (cas.cas_swapped) {
          // Recycle the displaced buffer. Bulk-load buffers are per-key and
          // the same size class, so they re-enter the pool too — without
          // this, every first overwrite would permanently consume a pool
          // buffer and ALLOCATE would starve once enough distinct keys had
          // been written.
          const rdma::Addr old_addr = LoadU64(cas.data.data() + 8);
          reclaim_[reclaim_idx]->Free(shard->freelist(), old_addr);
        } else {
          // A committed writer with a higher TS already installed: our
          // write is absorbed (Thomas write rule) — still a commit.
          reclaim_[reclaim_idx]->Free(shard->freelist(),
                                      alloc.resolved_addr);
        }
        quorum->Arrive(true);
      });
    }
    co_await quorum->Wait();
    if (!*ok_flag) {
      aborts_++;
      // Some install chains may have landed before the failure: the writes
      // are possibly (partially) visible.
      if (record) {
        history_->EndTxn(txn.history_id, check::TxOutcome::kIndeterminate);
      }
      co_return Aborted("commit install failed");
    }
  }
  commits_++;
  if (record) history_->EndTxn(txn.history_id, check::TxOutcome::kCommitted);
  co_return OkStatus();
}

}  // namespace prism::tx
