// One-sided RDMA operations over the simulated fabric.
//
// RdmaService is the server-side entity that executes one-sided verbs
// against the host's AddressSpace. Two backends:
//
//   kHardwareNic    — the classic RDMA path: a NIC pipeline slot, PCIe DMA
//                     to host memory, no CPU. Calibrated to 2.5 µs per op on
//                     the direct-link testbed (paper Fig. 1).
//   kSoftwareStack  — a Snap-style software implementation: the op is DMA'd
//                     to a ring and executed by a dedicated server core,
//                     adding the paper's ~2.5 µs software premium. Used for
//                     the "(software RDMA)" baseline variants in Figs. 3–10.
//
// RdmaClient provides awaitable verbs; each op is a coroutine that charges
// client post/completion costs, ships the request across the fabric, and
// suspends until the response (or drop/timeout) arrives.
//
// Implementation note: ServerPath only *charges time*; the memory effect runs
// in the spawned server coroutine after the await. Closures are never passed
// as coroutine parameters (see the warning in sim/task.h).
#ifndef PRISM_SRC_RDMA_SERVICE_H_
#define PRISM_SRC_RDMA_SERVICE_H_

#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/obs/timeline.h"
#include "src/rdma/batch.h"
#include "src/rdma/memory.h"
#include "src/rdma/verbs.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::rdma {

enum class Backend {
  kHardwareNic,
  kSoftwareStack,
};

class RdmaService {
 public:
  RdmaService(net::Fabric* fabric, net::HostId host, Backend backend,
              AddressSpace* mem)
      : fabric_(fabric),
        host_(host),
        backend_(backend),
        mem_(mem),
        nic_pipeline_(fabric->sim(host), fabric->cost().nic_pipeline_units),
        ops_metric_(fabric->obs().metrics().AddCounter(
            "rdma", "server_ops", fabric->HostName(host))) {}

  net::HostId host() const { return host_; }
  Backend backend() const { return backend_; }
  AddressSpace& memory() { return *mem_; }
  uint64_t ops_executed() const { return ops_executed_; }

  // Charges the server-side datapath cost for one op: NIC pipeline + PCIe on
  // the hardware backend, ring DMA + a dedicated core on the software one.
  // The caller performs the memory effect after this resumes.
  sim::Task<void> ServerPath(sim::Duration memory_cost) {
    // Entered synchronously from the request-delivery event; the register
    // still holds the issuing client's verb span.
    const obs::SpanId span = fabric_->obs().StartSpan(
        "rdma.server", "rdma", host_, fabric_->sim(host_)->Now());
    const net::CostModel& c = fabric_->cost();
    if (backend_ == Backend::kHardwareNic) {
      co_await nic_pipeline_.Use(c.nic_process);
      co_await sim::SleepFor(fabric_->sim(host_), memory_cost);
    } else {
      co_await sim::SleepFor(fabric_->sim(host_),
                             c.sw_ring_dma + c.sw_queue_delay);
      co_await fabric_->Cores(host_).Use(c.sw_dispatch + c.sw_primitive);
      co_await sim::SleepFor(fabric_->sim(host_), c.sw_tx);
    }
    ops_executed_++;
    ops_metric_->Add();
    fabric_->obs().FinishSpan(span, fabric_->sim(host_)->Now());
  }

  // ---- Same-QP ordering around atomics ---------------------------------
  //
  // Real RNIC responders execute a QP's inbound requests in PSN order. The
  // model relaxes that so the multi-unit NIC pipeline can overlap cheap
  // READs with expensive ops from the same source — EXCEPT around atomics:
  // an atomic is an ordering point, and every request from the same source
  // host that *arrives after* an in-flight atomic begins execution only
  // once that atomic's memory effect has landed. Without this fence a
  // doorbell-batched [CAS; dependent READ] pair reorders at the responder
  // (the CAS pays atomic_overhead, the READ does not) and the READ observes
  // pre-CAS memory — an outcome no hardware QP can produce (qp_test pins
  // it). Plain READ/WRITE pairs still pipeline freely, so open-loop pools
  // that multiplex many workers over one client are not serialized.
  struct AtomicTicket {
    std::shared_ptr<sim::Event> prev;  // await before executing (may be null)
    std::shared_ptr<sim::Event> mine;  // Set() once the effect has landed
  };

  // Called by an atomic verb, synchronously at request delivery (so arrival
  // order matches PSN order): chains this atomic behind any in-flight one
  // from the same source and installs its own gate for later arrivals.
  AtomicTicket AtomicBegin(net::HostId src) {
    AtomicTicket t;
    std::shared_ptr<sim::Event>& tail = atomic_tail_[src];
    t.prev = tail;
    t.mine = std::make_shared<sim::Event>(fabric_->sim(host_));
    tail = t.mine;
    return t;
  }

  // Called by a non-atomic verb, synchronously at request delivery: the
  // gate of the most recent atomic from the same source, if any.
  std::shared_ptr<sim::Event> AtomicGate(net::HostId src) const {
    auto it = atomic_tail_.find(src);
    return it == atomic_tail_.end() ? nullptr : it->second;
  }

 private:
  net::Fabric* fabric_;
  net::HostId host_;
  Backend backend_;
  AddressSpace* mem_;
  sim::ServiceQueue nic_pipeline_;
  obs::Counter* ops_metric_;
  uint64_t ops_executed_ = 0;
  // Per-source tail of the atomic ordering chain (see AtomicBegin).
  std::unordered_map<net::HostId, std::shared_ptr<sim::Event>> atomic_tail_;
};

class RdmaClient {
 public:
  RdmaClient(net::Fabric* fabric, net::HostId self)
      : fabric_(fabric), self_(self) {}

  net::HostId host() const { return self_; }

  // Protocol-complexity tally across every verb issued by this client
  // (see src/obs/complexity.h for the counting rules).
  const obs::TransportTally& tally() const { return tally_; }

  // Routes this client's post/poll path through a shared per-host batcher
  // (doorbell batching + completion coalescing). Null (default) keeps the
  // flat unbatched cost: one doorbell ring and one CQ drain per verb.
  void set_batcher(VerbBatcher* b) { batcher_ = b; }

  // Deadline for an op before it completes kTimedOut (models RC transport
  // retry exhaustion, compressed to keep failure tests fast).
  static constexpr sim::Duration kOpTimeout = sim::Millis(5);

  sim::Task<Result<Bytes>> Read(RdmaService* svc, RKey rkey, Addr addr,
                                uint64_t len) {
    auto state = std::make_shared<OpState<Bytes>>(fabric_->sim(self_),
                                                  TimedOut("rdma read"));
    state->span = fabric_->obs().StartSpan("rdma.read", "rdma", self_,
                                           fabric_->sim(self_)->Now());
    BeginOp(state);
    co_await PostGate();
    PreSend(svc, state, 16);
    fabric_->Send(
        self_, svc->host(), /*payload=*/16,
        [this, svc, rkey, addr, len, state] {
          fabric_->obs().SetCurrentSpan(state->span);
          // CPU-involvement semantics: only the software stack's server
          // time is "responder"; the hardware NIC path stays on the wire.
          if (svc->backend() == Backend::kSoftwareStack) {
            obs::SwitchOp(state->op, obs::Phase::kResponder,
                          fabric_->sim(svc->host())->Now());
          }
          sim::Spawn([this, svc, rkey, addr, len, state]() -> sim::Task<void> {
            auto gate = svc->AtomicGate(self_);
            if (gate != nullptr) co_await gate->Wait();
            co_await svc->ServerPath(fabric_->cost().pcie_read_rtt);
            state->result = Verbs::Read(svc->memory(), rkey, addr, len);
            Respond(svc, state,
                    state->result.ok() ? state->result.value().size() : 0);
          });
        },
        [state] { state->Finish(Unavailable("host down")); });
    auto result = co_await Complete(state);
    co_return result;
  }

  sim::Task<Status> Write(RdmaService* svc, RKey rkey, Addr addr, Bytes data) {
    auto state = std::make_shared<OpState<Bytes>>(fabric_->sim(self_),
                                                  TimedOut("rdma write"));
    state->span = fabric_->obs().StartSpan("rdma.write", "rdma", self_,
                                           fabric_->sim(self_)->Now());
    BeginOp(state);
    co_await PostGate();
    const size_t req_payload = 16 + data.size();
    auto payload = std::make_shared<Bytes>(std::move(data));
    PreSend(svc, state, req_payload);
    fabric_->Send(
        self_, svc->host(), req_payload,
        [this, svc, rkey, addr, payload = std::move(payload), state] {
          fabric_->obs().SetCurrentSpan(state->span);
          // CPU-involvement semantics: only the software stack's server
          // time is "responder"; the hardware NIC path stays on the wire.
          if (svc->backend() == Backend::kSoftwareStack) {
            obs::SwitchOp(state->op, obs::Phase::kResponder,
                          fabric_->sim(svc->host())->Now());
          }
          sim::Spawn([this, svc, rkey, addr, payload,
                      state]() -> sim::Task<void> {
            auto gate = svc->AtomicGate(self_);
            if (gate != nullptr) co_await gate->Wait();
            co_await svc->ServerPath(fabric_->cost().pcie_write);
            Status s = Verbs::Write(svc->memory(), rkey, addr, *payload);
            if (s.ok()) {
              state->result = Bytes{};
            } else {
              state->result = s;
            }
            Respond(svc, state, /*payload=*/0);
          });
        },
        [state] { state->Finish(Unavailable("host down")); });
    Result<Bytes> r = co_await Complete(state);
    co_return r.status();
  }

  sim::Task<Result<uint64_t>> CompareSwap(RdmaService* svc, RKey rkey,
                                          Addr addr, uint64_t compare,
                                          uint64_t swap) {
    auto state = std::make_shared<OpState<uint64_t>>(fabric_->sim(self_),
                                                     TimedOut("rdma cas"));
    state->span = fabric_->obs().StartSpan("rdma.cas", "rdma", self_,
                                           fabric_->sim(self_)->Now());
    BeginOp(state);
    co_await PostGate();
    PreSend(svc, state, 32);
    fabric_->Send(
        self_, svc->host(), /*payload=*/32,
        [this, svc, rkey, addr, compare, swap, state] {
          fabric_->obs().SetCurrentSpan(state->span);
          // CPU-involvement semantics: only the software stack's server
          // time is "responder"; the hardware NIC path stays on the wire.
          if (svc->backend() == Backend::kSoftwareStack) {
            obs::SwitchOp(state->op, obs::Phase::kResponder,
                          fabric_->sim(svc->host())->Now());
          }
          sim::Spawn([this, svc, rkey, addr, compare, swap,
                      state]() -> sim::Task<void> {
            auto ticket = svc->AtomicBegin(self_);
            if (ticket.prev != nullptr) co_await ticket.prev->Wait();
            const net::CostModel& cost = fabric_->cost();
            co_await svc->ServerPath(cost.pcie_read_rtt +
                                     cost.atomic_overhead);
            state->result =
                Verbs::CompareSwap(svc->memory(), rkey, addr, compare, swap);
            ticket.mine->Set();
            Respond(svc, state, /*payload=*/8);
          });
        },
        [state] { state->Finish(Unavailable("host down")); });
    auto result = co_await Complete(state);
    co_return result;
  }

  sim::Task<Result<uint64_t>> FetchAdd(RdmaService* svc, RKey rkey, Addr addr,
                                       uint64_t delta) {
    auto state = std::make_shared<OpState<uint64_t>>(fabric_->sim(self_),
                                                     TimedOut("rdma faa"));
    state->span = fabric_->obs().StartSpan("rdma.faa", "rdma", self_,
                                           fabric_->sim(self_)->Now());
    BeginOp(state);
    co_await PostGate();
    PreSend(svc, state, 24);
    fabric_->Send(
        self_, svc->host(), /*payload=*/24,
        [this, svc, rkey, addr, delta, state] {
          fabric_->obs().SetCurrentSpan(state->span);
          // CPU-involvement semantics: only the software stack's server
          // time is "responder"; the hardware NIC path stays on the wire.
          if (svc->backend() == Backend::kSoftwareStack) {
            obs::SwitchOp(state->op, obs::Phase::kResponder,
                          fabric_->sim(svc->host())->Now());
          }
          sim::Spawn(
              [this, svc, rkey, addr, delta, state]() -> sim::Task<void> {
                auto ticket = svc->AtomicBegin(self_);
                if (ticket.prev != nullptr) co_await ticket.prev->Wait();
                const net::CostModel& cost = fabric_->cost();
                co_await svc->ServerPath(cost.pcie_read_rtt +
                                         cost.atomic_overhead);
                state->result =
                    Verbs::FetchAdd(svc->memory(), rkey, addr, delta);
                ticket.mine->Set();
                Respond(svc, state, /*payload=*/8);
              });
        },
        [state] { state->Finish(Unavailable("host down")); });
    auto result = co_await Complete(state);
    co_return result;
  }

  // Mellanox-style masked CAS (standard hardware feature, §3.3): exposed on
  // the plain RDMA client because the ABD-LOCK baseline uses it for locks.
  sim::Task<Result<CasOutcome>> MaskedCompareSwap(
      RdmaService* svc, RKey rkey, Addr addr, Bytes data, Bytes cmp_mask,
      Bytes swap_mask, CasCompare mode = CasCompare::kEqual) {
    auto state = std::make_shared<OpState<CasOutcome>>(
        fabric_->sim(self_), TimedOut("rdma masked cas"));
    state->span = fabric_->obs().StartSpan("rdma.masked_cas", "rdma", self_,
                                           fabric_->sim(self_)->Now());
    BeginOp(state);
    co_await PostGate();
    const size_t req_payload = 16 + 3 * data.size();
    const size_t width = data.size();
    struct Args {
      Bytes data, cmp_mask, swap_mask;
    };
    auto args = std::make_shared<Args>(Args{std::move(data),
                                            std::move(cmp_mask),
                                            std::move(swap_mask)});
    PreSend(svc, state, req_payload);
    fabric_->Send(
        self_, svc->host(), req_payload,
        [this, svc, rkey, addr, args = std::move(args), mode, state, width] {
          fabric_->obs().SetCurrentSpan(state->span);
          // CPU-involvement semantics: only the software stack's server
          // time is "responder"; the hardware NIC path stays on the wire.
          if (svc->backend() == Backend::kSoftwareStack) {
            obs::SwitchOp(state->op, obs::Phase::kResponder,
                          fabric_->sim(svc->host())->Now());
          }
          sim::Spawn([this, svc, rkey, addr, args, mode, state,
                      width]() -> sim::Task<void> {
            auto ticket = svc->AtomicBegin(self_);
            if (ticket.prev != nullptr) co_await ticket.prev->Wait();
            const net::CostModel& cost = fabric_->cost();
            co_await svc->ServerPath(cost.pcie_read_rtt +
                                     cost.atomic_overhead);
            state->result = Verbs::MaskedCompareSwap(
                svc->memory(), rkey, addr, args->data, args->cmp_mask,
                args->swap_mask, mode);
            ticket.mine->Set();
            Respond(svc, state, /*payload=*/width);
          });
        },
        [state] { state->Finish(Unavailable("host down")); });
    auto result = co_await Complete(state);
    co_return result;
  }

 private:
  template <typename T>
  struct OpState {
    OpState(sim::Simulator* sim, Status pending)
        : done(sim), result(std::move(pending)) {}
    sim::Event done;
    Result<T> result;
    obs::SpanId span = 0;
    obs::OpTimeline* op = nullptr;  // phase timeline (null when untimed)
    size_t resp_bytes = 0;
    bool responded = false;
    void Finish(Status s) {
      if (!done.is_set()) {
        result = std::move(s);
        done.Set();
      }
    }
  };

  // Verb-entry attribution: captures the current-op register (armed by the
  // caller with no suspension point in between — the span-register
  // discipline) and enters kBatchWait, which covers the post path up to the
  // wire handoff (flat client_post or the doorbell-batch flush wait).
  template <typename T>
  void BeginOp(const std::shared_ptr<OpState<T>>& state) {
    obs::Hub& hub = fabric_->obs();
    state->op = hub.current_op();
    if (state->op == nullptr) return;
    if (state->op->root_span() == 0 && state->span != 0 &&
        hub.tracer() != nullptr) {
      state->op->set_root_span(hub.tracer()->RootOf(state->span));
    }
    state->op->Switch(obs::Phase::kBatchWait, fabric_->sim(self_)->Now());
  }

  // Post-side gate every verb awaits before handing its WR to the fabric.
  // Unbatched: a flat client_post and one doorbell ring per WR. Batched: the
  // shared VerbBatcher delays the WR until its doorbell rings and charges
  // the amortized cost (one `doorbells` tick per ring, on the batch opener).
  sim::Task<void> PostGate() {
    if (batcher_ != nullptr) {
      co_await batcher_->Post(&tally_);
    } else {
      tally_.doorbells++;
      co_await sim::SleepFor(fabric_->sim(self_), fabric_->cost().client_post);
    }
  }

  // Completion-side gate: flat CQ drain per op, or the batcher's moderated
  // drain (one `cq_polls` tick per drain).
  sim::Task<void> CompletionGate() {
    if (batcher_ != nullptr) {
      co_await batcher_->Complete(&tally_);
    } else {
      tally_.cq_polls++;
      co_await sim::SleepFor(fabric_->sim(self_), fabric_->cost().completion);
    }
  }

  // Request-side accounting shared by every verb, applied just before the
  // fabric Send: one logical message out, a CPU action when the far side is
  // software RDMA, and the current-span register primed for the flight span.
  template <typename T>
  void PreSend(RdmaService* svc, const std::shared_ptr<OpState<T>>& state,
               size_t req_bytes) {
    tally_.messages++;
    tally_.bytes_out += req_bytes;
    if (svc->backend() == Backend::kSoftwareStack) tally_.cpu_actions++;
    obs::SwitchOp(state->op, obs::Phase::kWire, fabric_->sim(self_)->Now());
    fabric_->obs().SetCurrentSpan(state->span);
    fabric_->obs().SetCurrentOp(state->op);
  }

  template <typename T>
  void Respond(RdmaService* svc, std::shared_ptr<OpState<T>> state,
               size_t payload) {
    state->resp_bytes = payload;
    obs::SwitchOp(state->op, obs::Phase::kWire,
                  fabric_->sim(svc->host())->Now());
    fabric_->obs().SetCurrentSpan(state->span);
    fabric_->obs().SetCurrentOp(state->op);
    fabric_->Send(svc->host(), self_, payload, [this, state] {
      // Response delivered: the client-side completion path (CQ poll or
      // coalesced drain) starts here.
      obs::SwitchOp(state->op, obs::Phase::kBatchWait,
                    fabric_->sim(self_)->Now());
      if (!state->done.is_set()) {
        state->responded = true;
        state->done.Set();
      }
    });
  }

  template <typename T>
  sim::Task<Result<T>> Complete(std::shared_ptr<OpState<T>> state) {
    // Timeout guard: fires only if neither response nor drop arrived.
    fabric_->sim(self_)->Schedule(kOpTimeout, [state] {
      state->Finish(TimedOut("op deadline"));
    });
    co_await state->done.Wait();
    co_await CompletionGate();
    if (state->responded) {
      tally_.round_trips++;
      tally_.bytes_in += state->resp_bytes;
    }
    obs::SwitchOp(state->op, obs::Phase::kApp, fabric_->sim(self_)->Now());
    // Restore the register before returning: the caller resumes
    // synchronously from here, so its next verb captures the right op.
    fabric_->obs().SetCurrentOp(state->op);
    fabric_->obs().FinishSpan(state->span, fabric_->sim(self_)->Now());
    co_return std::move(state->result);
  }

  net::Fabric* fabric_;
  net::HostId self_;
  VerbBatcher* batcher_ = nullptr;
  obs::TransportTally tally_;
};

}  // namespace prism::rdma

#endif  // PRISM_SRC_RDMA_SERVICE_H_
