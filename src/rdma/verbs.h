// Semantic executor for standard RDMA one-sided verbs.
//
// Pure synchronous functions over an AddressSpace: they perform the rkey /
// range / rights validation a NIC would and then the memory effect. No
// timing — the fabric services (rdma/service.h) wrap these with the latency
// and queueing model. Keeping semantics separate makes them directly
// unit-testable and lets the PRISM executor reuse them.
//
// Supported verbs:
//   Read / Write                — arbitrary length
//   CompareSwap / FetchAdd      — standard 8-byte RDMA atomics
//   MaskedCompareSwap           — Mellanox "extended atomics" style masked
//                                 CAS on 8..32-byte operands; the basis of
//                                 PRISM's enhanced CAS (§3.3)
#ifndef PRISM_SRC_RDMA_VERBS_H_
#define PRISM_SRC_RDMA_VERBS_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/rdma/memory.h"

namespace prism::rdma {

// Comparison operators for the masked CAS. Standard RDMA offers only kEqual;
// PRISM adds the arithmetic comparisons (§3.3), computed by the same adder
// that implements FETCH_AND_ADD (§4.2).
enum class CasCompare : uint8_t {
  kEqual,
  kGreater,  // (data & cmp_mask) >  (*target & cmp_mask), unsigned
  kLess,     // (data & cmp_mask) <  (*target & cmp_mask), unsigned
};

struct CasOutcome {
  bool swapped = false;
  Bytes old_value;  // previous *target (width bytes), always returned
};

class Verbs {
 public:
  static Result<Bytes> Read(const AddressSpace& mem, RKey rkey, Addr addr,
                            uint64_t len);

  static Status Write(AddressSpace& mem, RKey rkey, Addr addr, ByteView data);

  // Standard 8-byte atomic compare-and-swap; returns the previous value.
  static Result<uint64_t> CompareSwap(AddressSpace& mem, RKey rkey, Addr addr,
                                      uint64_t compare, uint64_t swap);

  // Standard 8-byte atomic fetch-and-add; returns the previous value.
  static Result<uint64_t> FetchAdd(AddressSpace& mem, RKey rkey, Addr addr,
                                   uint64_t delta);

  // Masked CAS with separate compare and swap operands (the full Mellanox
  // extended-atomics form), width ∈ {8,16,24,32}:
  //   if Compare(mode, *t & cmp_mask, compare & cmp_mask):
  //     *t = (*t & ~swap_mask) | (swap & swap_mask)
  // Arithmetic comparisons treat the masked operand as one little-endian
  // unsigned integer of the full width (so a field at a higher offset is
  // more significant — layouts in kv/rs/tx rely on this).
  static Result<CasOutcome> MaskedCompareSwap(AddressSpace& mem, RKey rkey,
                                              Addr addr, ByteView compare,
                                              ByteView swap,
                                              ByteView cmp_mask,
                                              ByteView swap_mask,
                                              CasCompare mode);

  // Single-operand form (Table 1's compressed signature): compare and swap
  // share one operand, selected by the two masks.
  static Result<CasOutcome> MaskedCompareSwap(AddressSpace& mem, RKey rkey,
                                              Addr addr, ByteView data,
                                              ByteView cmp_mask,
                                              ByteView swap_mask,
                                              CasCompare mode) {
    return MaskedCompareSwap(mem, rkey, addr, data, data, cmp_mask,
                             swap_mask, mode);
  }

  // The masked comparison itself, exposed for the PRISM executor and tests.
  // a and b must be the same width. Returns Compare(mode, a&mask, b&mask)
  // where for kGreater/kLess `a` is the request operand and `b` the memory.
  static bool MaskedCompare(ByteView request, ByteView memory, ByteView mask,
                            CasCompare mode);
};

}  // namespace prism::rdma

#endif  // PRISM_SRC_RDMA_VERBS_H_
