#include "src/rdma/verbs.h"

namespace prism::rdma {
namespace {

constexpr uint64_t kMaxAtomicWidth = 32;

Status ValidateAtomicArgs(ByteView data, ByteView cmp_mask,
                          ByteView swap_mask) {
  const size_t width = data.size();
  if (width != 8 && width != 16 && width != 24 && width != 32) {
    return InvalidArgument("masked CAS width must be 8/16/24/32 bytes");
  }
  if (cmp_mask.size() != width || swap_mask.size() != width) {
    return InvalidArgument("mask width must match operand width");
  }
  static_assert(kMaxAtomicWidth == 32);
  return OkStatus();
}

}  // namespace

Result<Bytes> Verbs::Read(const AddressSpace& mem, RKey rkey, Addr addr,
                          uint64_t len) {
  PRISM_RETURN_IF_ERROR(mem.Validate(rkey, addr, len, kRemoteRead));
  return mem.Load(addr, len);
}

Status Verbs::Write(AddressSpace& mem, RKey rkey, Addr addr, ByteView data) {
  PRISM_RETURN_IF_ERROR(mem.Validate(rkey, addr, data.size(), kRemoteWrite));
  mem.Store(addr, data);
  return OkStatus();
}

Result<uint64_t> Verbs::CompareSwap(AddressSpace& mem, RKey rkey, Addr addr,
                                    uint64_t compare, uint64_t swap) {
  PRISM_RETURN_IF_ERROR(mem.Validate(rkey, addr, 8, kRemoteAtomic));
  if (addr % 8 != 0) {
    return InvalidArgument("atomic target must be 8-byte aligned");
  }
  uint64_t old = mem.LoadWord(addr);
  if (old == compare) {
    mem.StoreWord(addr, swap);
  }
  return old;
}

Result<uint64_t> Verbs::FetchAdd(AddressSpace& mem, RKey rkey, Addr addr,
                                 uint64_t delta) {
  PRISM_RETURN_IF_ERROR(mem.Validate(rkey, addr, 8, kRemoteAtomic));
  if (addr % 8 != 0) {
    return InvalidArgument("atomic target must be 8-byte aligned");
  }
  uint64_t old = mem.LoadWord(addr);
  mem.StoreWord(addr, old + delta);
  return old;
}

bool Verbs::MaskedCompare(ByteView request, ByteView memory, ByteView mask,
                          CasCompare mode) {
  PRISM_CHECK_EQ(request.size(), memory.size());
  PRISM_CHECK_EQ(request.size(), mask.size());
  switch (mode) {
    case CasCompare::kEqual:
      for (size_t i = 0; i < request.size(); ++i) {
        if ((request[i] & mask[i]) != (memory[i] & mask[i])) return false;
      }
      return true;
    case CasCompare::kGreater:
    case CasCompare::kLess: {
      // Little-endian unsigned comparison: scan from the most significant
      // (highest offset) byte down.
      for (size_t i = request.size(); i-- > 0;) {
        const uint8_t a = request[i] & mask[i];
        const uint8_t b = memory[i] & mask[i];
        if (a != b) {
          return mode == CasCompare::kGreater ? a > b : a < b;
        }
      }
      return false;  // equal: strict comparison fails
    }
  }
  return false;
}

Result<CasOutcome> Verbs::MaskedCompareSwap(AddressSpace& mem, RKey rkey,
                                            Addr addr, ByteView compare,
                                            ByteView swap,
                                            ByteView cmp_mask,
                                            ByteView swap_mask,
                                            CasCompare mode) {
  PRISM_RETURN_IF_ERROR(ValidateAtomicArgs(compare, cmp_mask, swap_mask));
  if (swap.size() != compare.size()) {
    return InvalidArgument("compare and swap operand widths differ");
  }
  PRISM_RETURN_IF_ERROR(
      mem.Validate(rkey, addr, compare.size(), kRemoteAtomic));
  if (addr % 8 != 0) {
    return InvalidArgument("atomic target must be 8-byte aligned");
  }
  CasOutcome outcome;
  outcome.old_value = mem.Load(addr, compare.size());
  outcome.swapped = MaskedCompare(compare, outcome.old_value, cmp_mask, mode);
  if (outcome.swapped) {
    Bytes updated = outcome.old_value;
    for (size_t i = 0; i < swap.size(); ++i) {
      updated[i] =
          static_cast<uint8_t>((updated[i] & ~swap_mask[i]) |
                               (swap[i] & swap_mask[i]));
    }
    mem.Store(addr, updated);
  }
  return outcome;
}

}  // namespace prism::rdma
