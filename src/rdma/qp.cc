#include "src/rdma/qp.h"

namespace prism::rdma {

sim::Task<Status> QueuePair::Send(Bytes data) {
  PRISM_CHECK(peer_ != nullptr) << "QP not connected";
  const net::CostModel& cost = fabric_->cost();
  co_await sim::SleepFor(fabric_->sim(host_), cost.client_post);

  auto state = std::make_shared<SendState>(fabric_->sim(host_));
  state->sender = host_;
  auto payload = std::make_shared<Bytes>(std::move(data));
  for (int attempt = 0; attempt <= kRnrRetries; ++attempt) {
    state->Reset();
    sends_metric_->Add();
    QueuePair* peer = peer_;
    net::Fabric* fabric = fabric_;
    const uint32_t src_qp = qp_number_;
    fabric_->Send(
        host_, peer_->host(), payload->size(),
        [fabric, peer, payload, state, src_qp] {
          // Receive path: consume a posted buffer, DMA the message in, then
          // surface a completion.
          auto buffer = peer->rq_->Consume(payload->size());
          if (!buffer.ok()) {
            state->Finish(buffer.status());  // RNR NACK back to sender
            return;
          }
          const Addr landed = *buffer;
          sim::Spawn([fabric, peer, payload, state, landed,
                      src_qp]() -> sim::Task<void> {
            co_await sim::SleepFor(fabric->sim(peer->host()),
                                   fabric->cost().nic_process +
                                       fabric->cost().pcie_write);
            peer->rq_->memory().Store(landed, *payload);
            peer->completions_.Push(
                RecvCompletion{landed, payload->size(), src_qp});
            // Ack back to the sender.
            fabric->Send(peer->host_, state->sender, 0,
                         [state] { state->Finish(OkStatus()); });
          });
        },
        [state] { state->Finish(Unavailable("peer down")); });
    co_await state->done->Wait();
    if (state->result.code() != Code::kResourceExhausted) {
      co_return state->result;  // delivered, or a non-retryable failure
    }
    rnr_metric_->Add();
    // RNR: wait for the receiver to post buffers, then retry (the standard
    // RNR-retry flow; ALLOCATE inherits exactly this behaviour, §4.2).
    co_await sim::SleepFor(fabric_->sim(host_), kRnrDelay);
  }
  co_return ResourceExhausted("RNR retries exhausted");
}

}  // namespace prism::rdma
