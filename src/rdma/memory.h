// Simulated host memory with RDMA-style registration.
//
// An AddressSpace is one host's RDMA-visible memory: a flat byte array
// addressed by 64-bit offsets. Server processes carve regions out of it with
// a bump allocator at setup time and register them to obtain rkeys; every
// remote access is validated against (rkey, address range, access rights)
// exactly as an RDMA NIC's MTT/MPT would.
//
// Regions can carry the kOnNic attribute: they model the NIC's user-visible
// on-chip SRAM (256 KB on a ConnectX-5, §4.2 of the paper). Semantics are
// identical to host memory; the *timing* layer checks IsOnNic() to decide
// whether an access costs a PCIe round trip.
#ifndef PRISM_SRC_RDMA_MEMORY_H_
#define PRISM_SRC_RDMA_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace prism::rdma {

using Addr = uint64_t;
using RKey = uint32_t;

// Access rights, OR-able.
enum Access : uint32_t {
  kRemoteRead = 1u << 0,
  kRemoteWrite = 1u << 1,
  kRemoteAtomic = 1u << 2,
  kRemoteAll = kRemoteRead | kRemoteWrite | kRemoteAtomic,
};

// Region attributes.
enum RegionAttr : uint32_t {
  kHostMemory = 0,
  kOnNic = 1u << 0,
};

struct MemoryRegion {
  Addr base = 0;
  uint64_t length = 0;
  RKey rkey = 0;
  uint32_t access = 0;
  uint32_t attrs = kHostMemory;

  bool Contains(Addr addr, uint64_t len) const {
    return addr >= base && len <= length && addr - base <= length - len;
  }
};

class AddressSpace {
 public:
  explicit AddressSpace(uint64_t capacity);

  uint64_t capacity() const { return capacity_; }

  // Carves a fresh range out of the space (setup-time bump allocation; this
  // models the server process malloc'ing + pinning memory, not PRISM's
  // ALLOCATE primitive).
  Result<Addr> Carve(uint64_t bytes, uint64_t align = 8);

  // Registers [base, base+length) for remote access and returns the region
  // with its newly minted rkey.
  Result<MemoryRegion> Register(Addr base, uint64_t length, uint32_t access,
                                uint32_t attrs = kHostMemory);

  // Convenience: Carve + Register in one step.
  Result<MemoryRegion> CarveAndRegister(uint64_t bytes, uint32_t access,
                                        uint32_t attrs = kHostMemory);

  // Invalidates a registration: subsequent Validate() calls against this
  // rkey NACK with PermissionDenied, exactly as a real NIC MPT drops an
  // MR on ibv_dereg_mr. Operations already in flight are unaffected until
  // they reach validation (validation happens at the target on delivery),
  // which is what makes revoke-while-in-flight races observable. kNotFound
  // for an rkey that was never minted (or already deregistered).
  Status Deregister(RKey rkey);

  // Validates that [addr, addr+len) lies inside the region named by rkey and
  // that the region grants `need` rights. Mirrors NIC MPT/MTT checks: an
  // unknown rkey, a range escaping the region, or missing rights all NACK.
  Status Validate(RKey rkey, Addr addr, uint64_t len, uint32_t need) const;

  const MemoryRegion* FindRegion(RKey rkey) const;

  // True iff [addr, addr+len) falls entirely inside a region registered with
  // kOnNic. Used (a) by the timing models — on-NIC accesses skip the PCIe
  // round trip — and (b) by the PRISM executor's access checks: the on-NIC
  // scratch region is NIC-owned per-connection space, accessible to chained
  // ops regardless of the application rkey (§4.2).
  bool IsOnNic(Addr addr, uint64_t len = 1) const;

  // Raw access, bounds-checked against the whole space (callers must have
  // validated region rights first; Verbs does).
  uint8_t* RawAt(Addr addr, uint64_t len);
  const uint8_t* RawAt(Addr addr, uint64_t len) const;

  // Checked convenience accessors used by server-local application code
  // (which, like a real CPU, bypasses rkey checks).
  uint64_t LoadWord(Addr addr) const;
  void StoreWord(Addr addr, uint64_t value);
  Bytes Load(Addr addr, uint64_t len) const;
  void Store(Addr addr, ByteView data);

 private:
  uint64_t capacity_;
  uint64_t next_free_ = 64;  // keep address 0 unmapped: null pointer trap
  std::vector<uint8_t> data_;
  std::vector<MemoryRegion> regions_;
  RKey next_rkey_ = 0x1000;
};

}  // namespace prism::rdma

#endif  // PRISM_SRC_RDMA_MEMORY_H_
