// Verb-layer doorbell batching and completion coalescing.
//
// Storm (PAPERS.md) argues that a fast RDMA dataplane lives or dies by
// amortizing per-operation NIC interactions: ringing one doorbell for N
// work requests and draining N CQEs per CQ poll. This models exactly those
// two amortizations for the simulated clients:
//
//  * Doorbell batching (post path). WRs posted by a client pool accumulate
//    in a send queue; the doorbell rings when `doorbell_batch` WRs are
//    queued or `db_timeout` elapses after the first queued WR. The ringing
//    costs one full `client_post` (the MMIO write + TX setup); each
//    further WR in the batch costs only `doorbell_per_wr`. Until its
//    doorbell rings, a WR has not left the host — the fabric Send happens
//    after the batcher resumes the verb coroutine, so batching genuinely
//    trades a bounded post delay for per-op CPU cost.
//
//  * Completion coalescing (poll path). A response landing in the CQ is
//    only observed when the CQ is drained; the moderated event fires when
//    `cq_moderation` CQEs are pending or `cq_timeout` after the first
//    unreported CQE. The drain costs one full `completion` for the first
//    CQE and `cqe_poll` for each further CQE in the drain.
//
// Accounting: one `doorbells` tick per ring and one `cq_polls` tick per
// drain, charged to the tally of the WR/CQE that opened the batch (totals
// aggregated per op type come out as doorbells-per-op ≈ 1/batch). Round
// trips, messages and bytes are untouched — batching changes client CPU
// actions and timing only, never the protocol shape.
//
// Determinism: all waiting is via Simulator::Resume with delays computed
// from simulation state, and the flush order is the FIFO queue order, so a
// batched run replays bit-identically. A VerbBatcher is per-host (or
// per-pool) state shared by the clients on that host; with
// doorbell_batch == 1 and cq_moderation == 1 the charged costs equal the
// unbatched path (one ring, one drain, full cost per op).
//
// Latency attribution (src/obs/timeline.h): the batcher itself stamps no
// phases. Every client enters Phase::kBatchWait before awaiting Post and
// leaves it when the fabric Send happens (request side) / when the op
// resumes past Complete (response side), so both the flush wait modeled
// here and the flat unbatched post/poll costs land in `batch_wait` without
// the batcher knowing whether an op is being timed.
#ifndef PRISM_SRC_RDMA_BATCH_H_
#define PRISM_SRC_RDMA_BATCH_H_

#include <coroutine>
#include <deque>

#include "src/common/logging.h"
#include "src/net/cost_model.h"
#include "src/obs/complexity.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace prism::rdma {

struct BatchOptions {
  int doorbell_batch = 1;                     // WRs per doorbell ring
  int cq_moderation = 1;                      // CQEs per CQ drain
  sim::Duration db_timeout = sim::Micros(2);  // flush partial post batch
  sim::Duration cq_timeout = sim::Micros(2);  // moderation timeout

  // The overload benches' default batched configuration.
  static BatchOptions Batched() {
    BatchOptions o;
    o.doorbell_batch = 8;
    o.cq_moderation = 8;
    return o;
  }
};

class VerbBatcher {
 public:
  VerbBatcher(sim::Simulator* sim, const net::CostModel* cost,
              BatchOptions opts)
      : sim_(sim), cost_(cost), opts_(opts) {
    PRISM_CHECK_GT(opts.doorbell_batch, 0);
    PRISM_CHECK_GT(opts.cq_moderation, 0);
    PRISM_CHECK_GT(opts.db_timeout, 0);
    PRISM_CHECK_GT(opts.cq_timeout, 0);
  }

  // Awaited by a verb in place of the flat `client_post` sleep, before the
  // fabric Send. Resumes once this WR's doorbell has rung and the NIC has
  // taken the WR; the charged delay is the amortized post cost.
  auto Post(obs::TransportTally* tally) {
    return LaneAwaiter{&post_lane_, this, tally};
  }

  // Awaited by a verb in place of the flat `completion` sleep, once the
  // response has arrived (the CQE is in the CQ). Resumes when the moderated
  // CQ drain reaches this CQE.
  auto Complete(obs::TransportTally* tally) {
    return LaneAwaiter{&cq_lane_, this, tally};
  }

  const BatchOptions& options() const { return opts_; }
  uint64_t doorbells_rung() const { return post_lane_.flushes; }
  uint64_t wrs_posted() const { return post_lane_.entries; }
  uint64_t cq_drains() const { return cq_lane_.flushes; }
  uint64_t cqes_reaped() const { return cq_lane_.entries; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    obs::TransportTally* tally;
  };

  struct Lane {
    std::deque<Waiter> q;
    uint64_t generation = 0;  // invalidates pending flush timers
    uint64_t flushes = 0;
    uint64_t entries = 0;
  };

  struct LaneAwaiter {
    Lane* lane;
    VerbBatcher* batcher;
    obs::TransportTally* tally;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      batcher->Enqueue(lane, Waiter{h, tally});
    }
    void await_resume() const noexcept {}
  };

  void Enqueue(Lane* lane, Waiter w) {
    lane->entries++;
    lane->q.push_back(w);
    const bool post_side = lane == &post_lane_;
    const int batch = post_side ? opts_.doorbell_batch : opts_.cq_moderation;
    if (static_cast<int>(lane->q.size()) >= batch) {
      Flush(lane);
    } else if (lane->q.size() == 1) {
      // First entry opens the batch window: arm the flush timer. A flush
      // before it fires bumps the generation, turning the timer into a
      // no-op; the next batch arms its own.
      const uint64_t gen = lane->generation;
      const sim::Duration timeout =
          post_side ? opts_.db_timeout : opts_.cq_timeout;
      sim_->Schedule(timeout, [this, lane, gen] {
        if (lane->generation == gen && !lane->q.empty()) Flush(lane);
      });
    }
  }

  // Rings the doorbell / fires the moderated CQ event: the first queued
  // entry pays the full per-interaction cost and the accounting tick; the
  // rest pay only the amortized per-entry cost, processed in FIFO order.
  void Flush(Lane* lane) {
    const bool post_side = lane == &post_lane_;
    const sim::Duration base =
        post_side ? cost_->client_post : cost_->completion;
    const sim::Duration per =
        post_side ? cost_->doorbell_per_wr : cost_->cqe_poll;
    lane->flushes++;
    lane->generation++;
    sim::Duration delay = base;
    bool first = true;
    while (!lane->q.empty()) {
      Waiter w = lane->q.front();
      lane->q.pop_front();
      if (w.tally != nullptr && first) {
        if (post_side) {
          w.tally->doorbells++;
        } else {
          w.tally->cq_polls++;
        }
      }
      first = false;
      sim_->Resume(w.handle, delay);
      delay += per;
    }
  }

  sim::Simulator* sim_;
  const net::CostModel* cost_;
  BatchOptions opts_;
  Lane post_lane_;
  Lane cq_lane_;
};

}  // namespace prism::rdma

#endif  // PRISM_SRC_RDMA_BATCH_H_
