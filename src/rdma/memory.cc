#include "src/rdma/memory.h"

namespace prism::rdma {

AddressSpace::AddressSpace(uint64_t capacity)
    : capacity_(capacity), data_(capacity, 0) {
  PRISM_CHECK_GT(capacity, 64u);
}

Result<Addr> AddressSpace::Carve(uint64_t bytes, uint64_t align) {
  PRISM_CHECK_GT(align, 0u);
  PRISM_CHECK_EQ((align & (align - 1)), 0u);
  uint64_t base = (next_free_ + align - 1) & ~(align - 1);
  if (bytes > capacity_ || base > capacity_ - bytes) {
    return ResourceExhausted("address space exhausted");
  }
  next_free_ = base + bytes;
  return base;
}

Result<MemoryRegion> AddressSpace::Register(Addr base, uint64_t length,
                                            uint32_t access, uint32_t attrs) {
  if (length == 0 || base >= capacity_ || length > capacity_ - base) {
    return OutOfRange("registration outside address space");
  }
  MemoryRegion region{.base = base,
                      .length = length,
                      .rkey = next_rkey_++,
                      .access = access,
                      .attrs = attrs};
  regions_.push_back(region);
  return region;
}

Result<MemoryRegion> AddressSpace::CarveAndRegister(uint64_t bytes,
                                                    uint32_t access,
                                                    uint32_t attrs) {
  PRISM_ASSIGN_OR_RETURN(Addr base, Carve(bytes));
  return Register(base, bytes, access, attrs);
}

Status AddressSpace::Deregister(RKey rkey) {
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].rkey == rkey) {
      regions_.erase(regions_.begin() + static_cast<ptrdiff_t>(i));
      return OkStatus();
    }
  }
  return NotFound("rkey not registered");
}

Status AddressSpace::Validate(RKey rkey, Addr addr, uint64_t len,
                              uint32_t need) const {
  const MemoryRegion* region = FindRegion(rkey);
  if (region == nullptr) {
    return PermissionDenied("unknown rkey");
  }
  if (!region->Contains(addr, len)) {
    return OutOfRange("access outside registered region");
  }
  if ((region->access & need) != need) {
    return PermissionDenied("region lacks required access rights");
  }
  return OkStatus();
}

const MemoryRegion* AddressSpace::FindRegion(RKey rkey) const {
  for (const MemoryRegion& r : regions_) {
    if (r.rkey == rkey) return &r;
  }
  return nullptr;
}

bool AddressSpace::IsOnNic(Addr addr, uint64_t len) const {
  for (const MemoryRegion& r : regions_) {
    if ((r.attrs & kOnNic) != 0 && r.Contains(addr, len)) return true;
  }
  return false;
}

uint8_t* AddressSpace::RawAt(Addr addr, uint64_t len) {
  PRISM_CHECK(addr < capacity_ && len <= capacity_ - addr)
      << "raw access out of bounds: addr=" << addr << " len=" << len;
  return data_.data() + addr;
}

const uint8_t* AddressSpace::RawAt(Addr addr, uint64_t len) const {
  PRISM_CHECK(addr < capacity_ && len <= capacity_ - addr);
  return data_.data() + addr;
}

uint64_t AddressSpace::LoadWord(Addr addr) const {
  return LoadU64(RawAt(addr, 8));
}

void AddressSpace::StoreWord(Addr addr, uint64_t value) {
  StoreU64(RawAt(addr, 8), value);
}

Bytes AddressSpace::Load(Addr addr, uint64_t len) const {
  const uint8_t* p = RawAt(addr, len);
  return Bytes(p, p + len);
}

void AddressSpace::Store(Addr addr, ByteView data) {
  std::memcpy(RawAt(addr, data.size()), data.data(), data.size());
}

}  // namespace prism::rdma
