// Two-sided RDMA: queue pairs, SEND/RECV, and shared receive queues.
//
// §4.2 grounds PRISM's ALLOCATE in this machinery: "its behavior closely
// resembles traditional SEND/RECEIVE functionality, where the NIC allocates
// a buffer from a receive queue to write an incoming message; existing SRQ
// functionality allows multiple connections to share a receive queue."
// This module implements that substrate explicitly:
//
//  * ReceiveQueue — a queue of posted receive buffers (addr, capacity). An
//    incoming SEND pops the head buffer, DMAs the message into it, and
//    produces a completion ⟨buffer, length⟩. No buffer posted ⇒ RNR NACK,
//    exactly the failure mode ALLOCATE inherits (§3.2 / freelist.h).
//  * SharedReceiveQueue — the same queue shared by many QPs.
//  * QueuePair — a connected endpoint: Send() transmits to the peer QP,
//    whose receive side (own RQ or attached SRQ) lands the message;
//    completions are consumed with AwaitRecv().
//
// Timing rides the same fabric model as everything else; the receive-side
// DMA charges pcie_write like any NIC write of host memory.
#ifndef PRISM_SRC_RDMA_QP_H_
#define PRISM_SRC_RDMA_QP_H_

#include <deque>
#include <memory>
#include <utility>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/rdma/memory.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace prism::rdma {

// A completed receive: where the message landed and how long it is.
struct RecvCompletion {
  Addr buffer = 0;
  uint64_t length = 0;
  uint32_t src_qp = 0;  // sender's QP number
};

// Posted receive buffers, popped in FIFO order by incoming SENDs.
class ReceiveQueue {
 public:
  explicit ReceiveQueue(AddressSpace* mem) : mem_(mem) {}

  // Posts a buffer of `capacity` bytes at `addr` for one incoming message.
  void PostRecv(Addr addr, uint64_t capacity) {
    buffers_.push_back({addr, capacity});
  }

  size_t posted() const { return buffers_.size(); }
  uint64_t rnr_nacks() const { return rnr_nacks_; }

  // Consumes the head buffer for a `length`-byte message; kResourceExhausted
  // (RNR) when empty or the message does not fit the head buffer.
  Result<Addr> Consume(uint64_t length) {
    if (buffers_.empty()) {
      rnr_nacks_++;
      return ResourceExhausted("receiver not ready (no posted buffers)");
    }
    if (length > buffers_.front().capacity) {
      rnr_nacks_++;
      return ResourceExhausted("posted buffer too small");
    }
    Addr addr = buffers_.front().addr;
    buffers_.pop_front();
    return addr;
  }

  AddressSpace& memory() { return *mem_; }

 private:
  struct Posted {
    Addr addr;
    uint64_t capacity;
  };
  AddressSpace* mem_;
  std::deque<Posted> buffers_;
  uint64_t rnr_nacks_ = 0;
};

// An SRQ is just a ReceiveQueue shared by several QPs (§4.2) — aliased for
// intent at call sites.
using SharedReceiveQueue = ReceiveQueue;

class QueuePair {
 public:
  // A QP owned by `host`; receive side uses `rq` (possibly shared). The QP
  // is connected to a peer with Connect().
  QueuePair(net::Fabric* fabric, net::HostId host, uint32_t qp_number,
            ReceiveQueue* rq)
      : fabric_(fabric),
        host_(host),
        qp_number_(qp_number),
        rq_(rq),
        completions_(fabric->sim(host)),
        sends_metric_(fabric->obs().metrics().AddCounter(
            "qp", "sends", fabric->HostName(host))),
        rnr_metric_(fabric->obs().metrics().AddCounter(
            "qp", "rnr_nacks", fabric->HostName(host))) {}

  void Connect(QueuePair* peer) { peer_ = peer; }

  net::HostId host() const { return host_; }
  uint32_t qp_number() const { return qp_number_; }

  // Sends `data` to the connected peer. Completes OK once the receiver has
  // landed it in a posted buffer; kResourceExhausted on RNR (after the
  // transport's bounded RNR retries); kUnavailable if the peer host is down.
  sim::Task<Status> Send(Bytes data);

  // Awaits the next receive completion on this QP's receive side.
  sim::Task<RecvCompletion> AwaitRecv() {
    auto completion = co_await completions_.Pop();
    co_return completion;
  }

  size_t pending_completions() const { return completions_.size(); }

 private:
  static constexpr int kRnrRetries = 4;
  static constexpr sim::Duration kRnrDelay = sim::Micros(10);

  // Per-attempt completion state; Reset() re-arms the event between RNR
  // retries.
  struct SendState {
    explicit SendState(sim::Simulator* s) : sim(s) { Reset(); }
    sim::Simulator* sim;
    std::shared_ptr<sim::Event> done;
    Status result;
    net::HostId sender = 0;
    void Reset() {
      done = std::make_shared<sim::Event>(sim);
      result = OkStatus();
    }
    void Finish(Status status) {
      if (!done->is_set()) {
        result = std::move(status);
        done->Set();
      }
    }
  };

  net::Fabric* fabric_;
  net::HostId host_;
  uint32_t qp_number_;
  ReceiveQueue* rq_;
  QueuePair* peer_ = nullptr;
  sim::Channel<RecvCompletion> completions_;
  obs::Counter* sends_metric_;
  obs::Counter* rnr_metric_;
};

}  // namespace prism::rdma

#endif  // PRISM_SRC_RDMA_QP_H_
