#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace prism {

LatencyHistogram::LatencyHistogram() : buckets_(kMaxBuckets, 0) {}

size_t LatencyHistogram::BucketFor(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  uint64_t v = static_cast<uint64_t>(nanos);
  if (v < kSubBuckets) return static_cast<size_t>(v);
  // Exponent of the highest set bit, then kSubBuckets linear sub-buckets.
  int exp = 63 - std::countl_zero(v);
  int sub_shift = exp - 6;  // log2(kSubBuckets)
  uint64_t sub = (v >> sub_shift) - kSubBuckets;
  size_t index = static_cast<size_t>((exp - 6 + 1)) * kSubBuckets +
                 static_cast<size_t>(sub);
  return std::min<size_t>(index, kMaxBuckets - 1);
}

int64_t LatencyHistogram::BucketLower(size_t index) {
  if (index < kSubBuckets) return static_cast<int64_t>(index);
  size_t tier = index / kSubBuckets;  // >= 1; inverse of BucketFor:
  size_t sub = index % kSubBuckets;   // tier = exp-5, value = (64+sub)<<(exp-6)
  // (64+sub) < 2^7, so the shifted value needs 7 + (tier-1) bits and spills
  // past int64 once tier >= 58. Samples never land there (BucketFor caps at
  // tier 57 for INT64_MAX), but quantile interpolation asks for the upper
  // edge of the last sample bucket — saturate instead of shifting into the
  // sign bit.
  if (tier - 1 >= 57) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>((kSubBuckets + sub) << (tier - 1));
}

void LatencyHistogram::Record(int64_t nanos) {
  buckets_[BucketFor(nanos)]++;
  if (count_ == 0) {
    min_ = max_ = nanos;
  } else {
    min_ = std::min(min_, nanos);
    max_ = std::max(max_, nanos);
  }
  count_++;
  sum_ += nanos < 0 ? 0 : nanos;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  PRISM_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

double LatencyHistogram::MeanNanos() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t LatencyHistogram::QuantileNanos(double q) const {
  if (count_ == 0) return 0;
  if (std::isnan(q)) return max_;  // comparisons below would all be false
  if (q <= 0) return min_;
  if (q >= 1) return max_;  // p100 is exact, not interpolated
  if (min_ == max_) return min_;  // single sample or constant stream
  const double target = q * static_cast<double>(count_);
  double seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      int64_t lo = BucketLower(i);
      // Cap the bucket's upper edge at the observed maximum: tightens the
      // estimate and keeps lo + frac*(hi-lo) inside int64 when BucketLower
      // saturates (tier >= 58).
      int64_t hi = (i + 1 < buckets_.size())
                       ? std::min(BucketLower(i + 1), max_)
                       : max_;
      double frac = (target - seen) / static_cast<double>(buckets_[i]);
      int64_t est = lo + static_cast<int64_t>(frac * static_cast<double>(hi - lo));
      return std::clamp(est, min_, max_);
    }
    seen = next;
  }
  return max_;
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  Summary s;
  s.count = count_;
  s.mean_us = MeanNanos() / 1e3;
  s.p50_us = static_cast<double>(QuantileNanos(0.5)) / 1e3;
  s.p99_us = static_cast<double>(QuantileNanos(0.99)) / 1e3;
  s.p999_us = static_cast<double>(QuantileNanos(0.999)) / 1e3;
  s.min_us = static_cast<double>(MinNanos()) / 1e3;
  s.max_us = static_cast<double>(MaxNanos()) / 1e3;
  return s;
}

double MeanOf(const std::vector<int64_t>& samples) {
  if (samples.empty()) return 0;
  double sum = 0;
  for (int64_t s : samples) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples.size());
}

}  // namespace prism
