#include "src/common/bytes.h"

#include <bit>

namespace prism {

static_assert(std::endian::native == std::endian::little,
              "PRISM's simulated memory layouts assume a little-endian host");

Bytes FieldMask(size_t width, size_t offset, size_t bytes) {
  PRISM_CHECK_LE(offset + bytes, width);
  Bytes mask(width, 0x00);
  for (size_t i = 0; i < bytes; ++i) {
    mask[offset + i] = 0xff;
  }
  return mask;
}

std::string HexDump(ByteView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace prism
