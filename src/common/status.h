// Status and Result<T>: the error model used throughout the PRISM codebase.
//
// No exceptions cross module boundaries (protocol code runs inside C++20
// coroutines where we want explicit, checkable error flow). Status carries a
// code plus an optional message; Result<T> is a Status-or-value sum type.
#ifndef PRISM_SRC_COMMON_STATUS_H_
#define PRISM_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <optional>

#include "src/common/logging.h"

namespace prism {

// Error codes. The RDMA-flavoured codes map onto wire NACK/completion errors
// (see rdma/verbs.h); the generic ones are used by applications.
enum class Code : uint8_t {
  kOk = 0,
  kInvalidArgument,     // malformed request
  kNotFound,            // key/object does not exist
  kAlreadyExists,       // insert of duplicate
  kOutOfRange,          // address/length outside a registered region
  kPermissionDenied,    // rkey mismatch or missing access rights
  kResourceExhausted,   // free list empty, queue full, table full
  kAborted,             // transaction/CAS lost a race; retry is reasonable
  kFailedPrecondition,  // conditional chain predecessor failed
  kUnavailable,         // host down / message undeliverable
  kTimedOut,            // operation deadline exceeded
  kInternal,            // invariant violation (bug)
};

std::string_view CodeName(Code code);

// A cheap, value-semantic status. kOk statuses carry no allocation.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Code code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl-style factories.
inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(Code::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(Code::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(Code::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(Code::kOutOfRange, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(Code::kPermissionDenied, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(Code::kResourceExhausted, std::move(msg));
}
inline Status Aborted(std::string msg) {
  return Status(Code::kAborted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(Code::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(Code::kUnavailable, std::move(msg));
}
inline Status TimedOut(std::string msg) {
  return Status(Code::kTimedOut, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(Code::kInternal, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
//
// Deliberately implemented as optional<T> + Status rather than
// std::variant<T, Status>: GCC 12's coroutine lowering miscompiles variant
// temporaries materialized in co_await expressions (double destruction of
// the active member — observed as heap corruption under ASan; see the
// warning in sim/task.h). optional-based storage lowers cleanly.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeStatus();` work.
  Result(T value) : value_(std::move(value)) {}       // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PRISM_CHECK(!status_.ok());
  }
  Result(Code code) : status_(Status(code)) {         // NOLINT
    PRISM_CHECK(code != Code::kOk);
  }

  bool ok() const { return value_.has_value(); }

  Status status() const {
    if (ok()) return OkStatus();
    return status_;
  }
  Code code() const { return status().code(); }

  const T& value() const& {
    PRISM_CHECK(ok()) << "Result::value() on error: " << status();
    return *value_;
  }
  T& value() & {
    PRISM_CHECK(ok()) << "Result::value() on error: " << status();
    return *value_;
  }
  T&& value() && {
    PRISM_CHECK(ok()) << "Result::value() on error: " << status();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagation helpers. PRISM_ASSIGN_OR_RETURN needs a unique temp name.
#define PRISM_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::prism::Status prism_status_tmp_ = (expr);      \
    if (!prism_status_tmp_.ok()) {                   \
      return prism_status_tmp_;                      \
    }                                                \
  } while (0)

#define PRISM_CONCAT_INNER_(a, b) a##b
#define PRISM_CONCAT_(a, b) PRISM_CONCAT_INNER_(a, b)

#define PRISM_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto PRISM_CONCAT_(prism_result_, __LINE__) = (expr);            \
  if (!PRISM_CONCAT_(prism_result_, __LINE__).ok()) {              \
    return PRISM_CONCAT_(prism_result_, __LINE__).status();        \
  }                                                                \
  lhs = std::move(PRISM_CONCAT_(prism_result_, __LINE__)).value()

}  // namespace prism

#endif  // PRISM_SRC_COMMON_STATUS_H_
