#include "src/common/hash.h"

#include <array>

namespace prism {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

uint64_t Fnv1a64(ByteView data) {
  uint64_t h = kFnvOffset;
  for (uint8_t byte : data) {
    h ^= byte;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view data) {
  return Fnv1a64(ByteView(reinterpret_cast<const uint8_t*>(data.data()),
                          data.size()));
}

uint32_t Crc32(const uint8_t* data, size_t len) {
  const auto& table = CrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(ByteView data) { return Crc32(data.data(), data.size()); }

}  // namespace prism
