// Byte-buffer utilities: the wire and memory representation used everywhere.
//
// Bytes is an owned, contiguous byte string; ByteView a non-owning view.
// Little-endian load/store helpers are used for every structure laid out in
// simulated host memory (hash-table slots, ⟨tag,addr⟩ metadata, OCC words),
// so layouts are byte-accurate and independent of host struct padding.
#ifndef PRISM_SRC_COMMON_BYTES_H_
#define PRISM_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace prism {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;
using MutableByteView = std::span<uint8_t>;

// ---- little-endian scalar accessors on raw pointers ----

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // all supported hosts are little-endian; asserted in bytes.cc
}

inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

// ---- view-checked accessors ----

inline uint64_t LoadU64(ByteView view, size_t offset = 0) {
  PRISM_CHECK_LE(offset + sizeof(uint64_t), view.size());
  return LoadU64(view.data() + offset);
}

inline uint32_t LoadU32(ByteView view, size_t offset = 0) {
  PRISM_CHECK_LE(offset + sizeof(uint32_t), view.size());
  return LoadU32(view.data() + offset);
}

inline void StoreU64(MutableByteView view, size_t offset, uint64_t v) {
  PRISM_CHECK_LE(offset + sizeof(uint64_t), view.size());
  StoreU64(view.data() + offset, v);
}

// ---- Bytes construction helpers ----

inline Bytes BytesOfU64(uint64_t v) {
  Bytes b(sizeof(v));
  StoreU64(b.data(), v);
  return b;
}

// Concatenation of two 64-bit words, used for wide (16-byte) CAS operands
// such as PRISM-RS's ⟨tag,addr⟩ and PRISM-TX's PW|PR pairs. Word `hi` is the
// *first* 8 bytes in memory order (matching the structures' layouts).
inline Bytes BytesOfU64Pair(uint64_t first, uint64_t second) {
  Bytes b(16);
  StoreU64(b.data(), first);
  StoreU64(b.data() + 8, second);
  return b;
}

inline Bytes BytesOfString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string StringOfBytes(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// A bitmask of `bytes` 0xff bytes starting at byte `offset` within a width-
// `width` operand; used to build enhanced-CAS compare/swap masks that select
// individual fields of a packed structure.
Bytes FieldMask(size_t width, size_t offset, size_t bytes);

// Hex dump for diagnostics ("deadbeef..." lowercase, no separators).
std::string HexDump(ByteView b);

}  // namespace prism

#endif  // PRISM_SRC_COMMON_BYTES_H_
