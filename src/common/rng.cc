#include "src/common/rng.h"

namespace prism {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace prism
