#include "src/common/status.h"

namespace prism {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kOutOfRange: return "OUT_OF_RANGE";
    case Code::kPermissionDenied: return "PERMISSION_DENIED";
    case Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Code::kAborted: return "ABORTED";
    case Code::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kTimedOut: return "TIMED_OUT";
    case Code::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace prism
