// Minimal CHECK/LOG machinery.
//
// PRISM_CHECK(cond) << "msg" aborts with file:line on failure; the streamed
// message is only evaluated on the failure path. PRISM_DCHECK compiles out in
// NDEBUG builds. Logging is intentionally tiny: the simulator is
// deterministic and single threaded, so a global stderr sink suffices.
#ifndef PRISM_SRC_COMMON_LOGGING_H_
#define PRISM_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace prism {
namespace internal {

// Accumulates the streamed failure message and aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows streamed operands when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace prism

#define PRISM_CHECK(cond)                                          \
  (cond) ? (void)0                                                 \
         : (void)(::prism::internal::CheckFailure(__FILE__, __LINE__, #cond))

// CHECK that allows streaming: use as PRISM_CHECK(x) << "detail". Implemented
// via a ternary into a sink so the detail is not evaluated on success.
#undef PRISM_CHECK
#define PRISM_CHECK(cond)                                                     \
  switch (0)                                                                  \
  case 0:                                                                     \
  default:                                                                    \
    (cond) ? (void)0 : ::prism::internal::Voidify() &                         \
        ::prism::internal::CheckFailure(__FILE__, __LINE__, #cond)

namespace prism::internal {
// Lowest-precedence sink that turns the CheckFailure stream into void so the
// ternary's arms have matching types.
struct Voidify {
  void operator&(CheckFailure&) {}
  void operator&(CheckFailure&&) {}
};
}  // namespace prism::internal

#ifdef NDEBUG
#define PRISM_DCHECK(cond) \
  while (false) PRISM_CHECK(cond)
#else
#define PRISM_DCHECK(cond) PRISM_CHECK(cond)
#endif

#define PRISM_CHECK_EQ(a, b) PRISM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define PRISM_CHECK_NE(a, b) PRISM_CHECK((a) != (b))
#define PRISM_CHECK_LT(a, b) PRISM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define PRISM_CHECK_LE(a, b) PRISM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define PRISM_CHECK_GT(a, b) PRISM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define PRISM_CHECK_GE(a, b) PRISM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // PRISM_SRC_COMMON_LOGGING_H_
