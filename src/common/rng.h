// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component (workload generators, backoff jitter, property
// tests) takes an explicit Rng so that simulations replay bit-identically
// from a seed.
#ifndef PRISM_SRC_COMMON_RNG_H_
#define PRISM_SRC_COMMON_RNG_H_

#include <cstdint>

namespace prism {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  // SplitMix64 expansion of the seed, per the xoshiro authors' guidance.
  void Seed(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  // Forks an independent stream (e.g. one per simulated client).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_RNG_H_
