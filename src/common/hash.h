// Hash functions used by the storage systems.
//
// - Fnv1a64: the key hash for PRISM-KV / Pilaf / PRISM-TX hash tables.
// - Crc32: Pilaf's self-verifying extents need an application-level checksum
//   to detect reads torn by concurrent server-CPU writes (§6 of the paper;
//   PRISM-KV's out-of-place updates make this unnecessary, which is part of
//   its bandwidth win in Figure 3).
// - MixU64: cheap integer finalizer for collision-free bucket placement in
//   benches that model the paper's "collisionless hash function".
#ifndef PRISM_SRC_COMMON_HASH_H_
#define PRISM_SRC_COMMON_HASH_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace prism {

uint64_t Fnv1a64(ByteView data);
uint64_t Fnv1a64(std::string_view data);

// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).
uint32_t Crc32(ByteView data);
uint32_t Crc32(const uint8_t* data, size_t len);

// Stafford variant 13 of the splitmix64 finalizer: a bijective mixer.
inline uint64_t MixU64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace prism

#endif  // PRISM_SRC_COMMON_HASH_H_
