// Latency statistics used by the benchmark harnesses.
//
// LatencyHistogram is a log-bucketed histogram over nanosecond samples with
// exact mean (kept as a running integer sum) and approximate percentiles;
// buckets use a fixed geometric layout so merging histograms from many
// simulated clients (or the open-loop per-pool histograms) is *lossless*:
// a merge of any partition of a sample stream is bit-identical to recording
// the stream into one histogram — no re-binning, and the integer sum makes
// the mean independent of accumulation order (asserted in common_test).
// Summary is the printable digest every bench row reports.
#ifndef PRISM_SRC_COMMON_HISTOGRAM_H_
#define PRISM_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prism {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(int64_t nanos);
  void Merge(const LatencyHistogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double MeanNanos() const;
  int64_t MinNanos() const { return count_ == 0 ? 0 : min_; }
  int64_t MaxNanos() const { return count_ == 0 ? 0 : max_; }

  // Approximate quantile (q in [0,1]) by linear interpolation inside the
  // containing bucket. Exact at q=0 and q=1.
  int64_t QuantileNanos(double q) const;

  struct Summary {
    int64_t count = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p99_us = 0;
    double p999_us = 0;
    double min_us = 0;
    double max_us = 0;
  };
  Summary Summarize() const;

 private:
  // Bucket i covers [Lower(i), Lower(i+1)). Sub-linear growth: 64 linear
  // buckets per power of two gives <1.6% relative error.
  static size_t BucketFor(int64_t nanos);
  static int64_t BucketLower(size_t index);

  static constexpr int kSubBuckets = 64;
  static constexpr int kMaxBuckets = 64 * kSubBuckets;

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  // Integer nanosecond sum: merging partial histograms yields exactly the
  // same mean as direct recording regardless of order (a double accumulator
  // would drift with accumulation order once counts get large). Headroom:
  // int64 holds ~9.2e9 seconds of cumulative latency.
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Mean over a plain sequence of samples; convenience for small tests.
double MeanOf(const std::vector<int64_t>& samples);

}  // namespace prism

#endif  // PRISM_SRC_COMMON_HISTOGRAM_H_
