// Deterministic parallel sweep execution.
//
// Every experiment in this repo — the bench/ figure drivers, the chaos
// seed sweeps, the soak and property tests — is a set of *independent*
// simulations: each sweep point builds its own Simulator, Fabric, RNGs and
// workload, runs to completion, and reduces to a small result struct. The
// SweepRunner exploits exactly that independence (the SimBricks recipe):
// orthogonal simulator instances run concurrently on a fixed thread pool
// while each instance stays internally single-threaded and deterministic.
//
// Determinism contract: results are collected into a point-index-ordered
// vector, every point is always attempted, and a point's computation never
// observes anything outside its own factory closure. Output is therefore
// bit-identical for any job count, and --jobs=1 executes the points inline
// on the calling thread in index order — byte-identical to the historical
// serial loops.
//
// Failure contract: a throwing point fails *that point* (the exception is
// captured into its slot); the pool drains the remaining points and joins
// normally, so one bad seed cannot deadlock or poison a sweep. RunSweep()
// rethrows the lowest-index captured exception after the join; callers that
// want per-point outcomes use RunSweepNoThrow().
#ifndef PRISM_SRC_HARNESS_SWEEP_H_
#define PRISM_SRC_HARNESS_SWEEP_H_

#include <atomic>
#include <cstdlib>
#include <exception>

#include "src/common/logging.h"
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace prism::harness {

// Worker count resolution: PRISM_JOBS env var if set and positive, else
// std::thread::hardware_concurrency() (minimum 1). Command-line --jobs=N
// (see JobsFromArgs) takes precedence over both.
inline int DefaultJobs() {
  if (const char* env = std::getenv("PRISM_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Parses --jobs=N (or -j N / -jN is NOT supported; keep one spelling) out
// of argv. Unrecognized arguments are left alone so gtest/benchmark flags
// pass through. Returns DefaultJobs() when the flag is absent.
inline int JobsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 7);
      if (n > 0) return n;
    }
  }
  return DefaultJobs();
}

// Intra-simulation worker count (partitions of the windowed parallel DES
// core, sim::ClusterSim). Resolution mirrors the --jobs chain — flag, then
// PRISM_CORES — but the *default is 1*, not hardware_concurrency: one
// simulation stays serial unless parallelism is asked for, keeping every
// historical run byte-identical by default.
inline int DefaultCores() {
  if (const char* env = std::getenv("PRISM_CORES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

// Parses --cores=N out of argv; PRISM_CORES, then 1, when absent. Same
// pass-through contract as JobsFromArgs.
inline int CoresFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cores=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 8);
      if (n > 0) return n;
    }
  }
  return DefaultCores();
}

// The two parallelism knobs compose multiplicatively: a sweep of J
// concurrent points, each a cluster of C engine workers, occupies J×C
// threads. PlanPool fits a requested (jobs, cores) into a fixed pool of
// `pool_threads` (typically hardware_concurrency) without oversubscribing:
// the explicit intra-simulation request wins (cores is clamped only to the
// pool itself) and the sweep sheds jobs to make room.
struct PoolPlan {
  int jobs = 1;
  int cores = 1;
};

inline PoolPlan PlanPool(int jobs, int cores, int pool_threads) {
  PoolPlan plan;
  const int pool = pool_threads < 1 ? 1 : pool_threads;
  plan.cores = cores < 1 ? 1 : cores;
  if (plan.cores > pool) plan.cores = pool;
  plan.jobs = jobs < 1 ? 1 : jobs;
  const int max_jobs = pool / plan.cores;
  if (plan.jobs > max_jobs) plan.jobs = max_jobs < 1 ? 1 : max_jobs;
  return plan;
}

struct SweepOptions {
  int jobs = 0;  // <= 0 resolves to DefaultJobs()

  // Optional early-stop token (RunSweepNoThrow only): a worker observing
  // `cancel` true stops claiming points; already-started points run to
  // completion. Unstarted points come back with neither value nor error
  // (PointResult::skipped()). The schedule-space explorer uses this to cut
  // a long sweep short once a counterexample is in hand; note that WHICH
  // points get skipped depends on timing and job count, so deterministic
  // callers must leave it null.
  const std::atomic<bool>* cancel = nullptr;
};

// Outcome slot for one sweep point: value, error, or skipped (the sweep was
// cancelled before the point started) once the sweep returns.
template <typename R>
struct PointResult {
  std::optional<R> value;
  std::exception_ptr error;

  bool ok() const { return value.has_value(); }
  bool skipped() const { return !value.has_value() && error == nullptr; }
};

// A sweep point: a self-contained factory that builds its simulation, runs
// it, and returns the extracted result. It must not touch state shared with
// other points (the per-point Simulator, Fabric, Rngs, histograms and any
// output buffers all live inside the closure).
template <typename R>
using SweepPoint = std::function<R()>;

template <typename R>
std::vector<PointResult<R>> RunSweepNoThrow(
    const std::vector<SweepPoint<R>>& points, const SweepOptions& opts = {}) {
  const size_t n = points.size();
  std::vector<PointResult<R>> results(n);
  auto run_point = [&](size_t i) {
    try {
      results[i].value.emplace(points[i]());
    } catch (...) {
      results[i].error = std::current_exception();
    }
  };

  auto cancelled = [&] {
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_relaxed);
  };

  int jobs = opts.jobs > 0 ? opts.jobs : DefaultJobs();
  if (static_cast<size_t>(jobs) > n) jobs = static_cast<int>(n);
  if (jobs <= 1) {
    // Serial lane: inline, in index order, on the calling thread — exactly
    // the historical `for (point : sweep)` loop.
    for (size_t i = 0; i < n && !cancelled(); ++i) run_point(i);
    return results;
  }

  // Fixed pool: `jobs` workers pull the next unclaimed index. Each result
  // lands in its own pre-sized slot, so no synchronization beyond the
  // ticket counter and the joins is needed, and order is index order by
  // construction no matter which worker ran which point.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        if (cancelled()) return;
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        run_point(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return results;
}

// Runs all points, then rethrows the lowest-index failure (if any). The
// rethrow happens after every point has been attempted and the pool has
// joined, so the surviving results are complete and the choice of failing
// exception is deterministic across job counts.
template <typename R>
std::vector<R> RunSweep(const std::vector<SweepPoint<R>>& points,
                        const SweepOptions& opts = {}) {
  PRISM_CHECK(opts.cancel == nullptr)
      << "cancel tokens require RunSweepNoThrow (skipped slots have no R)";
  std::vector<PointResult<R>> raw = RunSweepNoThrow(points, opts);
  std::vector<R> out;
  out.reserve(raw.size());
  for (PointResult<R>& r : raw) {
    if (r.error) std::rethrow_exception(r.error);
    out.push_back(std::move(*r.value));
  }
  return out;
}

// Convenience wrapper carrying a fixed job count, for call sites that
// resolve --jobs once and fan several sweeps through it.
class SweepRunner {
 public:
  explicit SweepRunner(int jobs = 0) { opts_.jobs = jobs; }
  explicit SweepRunner(const SweepOptions& opts) : opts_(opts) {}

  int jobs() const {
    return opts_.jobs > 0 ? opts_.jobs : DefaultJobs();
  }

  template <typename R>
  std::vector<R> Run(const std::vector<SweepPoint<R>>& points) const {
    return RunSweep(points, opts_);
  }

  template <typename R>
  std::vector<PointResult<R>> RunNoThrow(
      const std::vector<SweepPoint<R>>& points) const {
    return RunSweepNoThrow(points, opts_);
  }

 private:
  SweepOptions opts_;
};

}  // namespace prism::harness

#endif  // PRISM_SRC_HARNESS_SWEEP_H_
