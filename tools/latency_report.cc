// latency_report: reads the attribution / time-series / trace JSON a figure
// driver emits under --trace and answers "where did the tail go?"
//
//   latency_report results/ATTRIB_fig_overload.json
//       [--ts=results/TS_fig_overload.json] [--trace=results/trace.json]
//       [--series=NAME] [--expect=SERIES/CLASS/PHASE/MINSHARE]...
//       [--expect-dominant=SERIES/CLASS/PHASE]...
//
// For every sweep point it prints a per-class critical-path table: each
// phase's share of the slowest-K exemplar tail, its share of the whole
// measurement window (exact integer phase sums), and the phase-histogram
// p999. The slowest exemplar that carries a pinned span tree is expanded
// into a span-level critical-path listing. Machine-readable `verdict:` lines
// give the dominant tail phase per (series, class) at that series' top load
// point — CLASS `*` pools every class of the point.
//
// Expectations make the tool a CI gate: `--expect` demands a minimum tail
// share for a phase at the series' top load point, `--expect-dominant`
// demands the phase be the argmax. Exit codes are part of the contract:
//   0  report printed, all expectations met
//   1  an expectation failed
//   2  malformed input (JSON parse error, missing field, unreadable file)
//
// The parser below is deliberately self-contained (recursive descent over
// the full JSON grammar): the repo's writers emit JSON but nothing in-tree
// needed to *read* it until this tool, and the report must fail loudly
// (exit 2) on truncated or hand-edited input rather than misreport.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct Json {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;  // insertion order kept

  const Json* Find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct ParseError {
  std::string msg;
  size_t offset = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json Parse() {
    Json v = Value();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing bytes after top-level value");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) {
    throw ParseError{why, pos_};
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      pos_++;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    pos_++;
  }

  Json Value() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"': {
        Json v;
        v.type = Json::kString;
        v.str = String();
        return v;
      }
      case 't':
      case 'f':
        return Literal();
      case 'n':
        Keyword("null");
        return Json{};
      default:
        return Number();
    }
  }

  void Keyword(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      Fail("unrecognized literal");
    }
    pos_ += word.size();
  }

  Json Literal() {
    Json v;
    v.type = Json::kBool;
    if (Peek() == 't') {
      Keyword("true");
      v.boolean = true;
    } else {
      Keyword("false");
      v.boolean = false;
    }
    return v;
  }

  Json Number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    double d = std::strtod(begin, &end);
    if (end == begin) Fail("expected a JSON value");
    pos_ += static_cast<size_t>(end - begin);
    Json v;
    v.type = Json::kNumber;
    v.number = d;
    return v;
  }

  std::string String() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("bad hex digit in \\u escape");
          }
          // The writers only emit ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  Json Array() {
    Expect('[');
    Json v;
    v.type = Json::kArray;
    SkipWs();
    if (Peek() == ']') {
      pos_++;
      return v;
    }
    for (;;) {
      v.arr.push_back(Value());
      SkipWs();
      char c = Peek();
      pos_++;
      if (c == ']') return v;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  Json Object() {
    Expect('{');
    Json v;
    v.type = Json::kObject;
    SkipWs();
    if (Peek() == '}') {
      pos_++;
      return v;
    }
    for (;;) {
      SkipWs();
      std::string key = String();
      SkipWs();
      Expect(':');
      v.obj.emplace_back(std::move(key), Value());
      SkipWs();
      char c = Peek();
      pos_++;
      if (c == '}') return v;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Typed views over the ATTRIB schema. Every accessor hard-fails (exit 2 via
// ParseError) when a required field is missing or mistyped.

const Json& Require(const Json& obj, std::string_view key) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    throw ParseError{"missing required field \"" + std::string(key) + "\"", 0};
  }
  return *v;
}

double Num(const Json& obj, std::string_view key) {
  const Json& v = Require(obj, key);
  if (v.type != Json::kNumber) {
    throw ParseError{"field \"" + std::string(key) + "\" is not a number", 0};
  }
  return v.number;
}

const std::string& Str(const Json& obj, std::string_view key) {
  const Json& v = Require(obj, key);
  if (v.type != Json::kString) {
    throw ParseError{"field \"" + std::string(key) + "\" is not a string", 0};
  }
  return v.str;
}

const std::vector<Json>& Arr(const Json& obj, std::string_view key) {
  const Json& v = Require(obj, key);
  if (v.type != Json::kArray) {
    throw ParseError{"field \"" + std::string(key) + "\" is not an array", 0};
  }
  return v.arr;
}

std::string LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError{"cannot open " + path, 0};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Report model.

struct ClassTail {
  std::string name;
  uint64_t count = 0;
  double p999_us = 0;
  std::vector<double> window_ns;     // exact per-phase sums over the window
  std::vector<double> tail_ns;       // per-phase sums over the exemplars
  std::vector<double> phase_p999_us; // per-phase histogram p999
  const Json* exemplars = nullptr;
};

struct Point {
  std::string series;
  double x = NAN;
  uint64_t started = 0, measured = 0;
  std::vector<ClassTail> classes;
};

int DominantPhase(const std::vector<double>& ns) {
  int best = 0;
  for (size_t i = 1; i < ns.size(); i++) {
    if (ns[i] > ns[best]) best = static_cast<int>(i);
  }
  return best;
}

double Share(const std::vector<double>& ns, int phase) {
  double total = 0;
  for (double v : ns) total += v;
  return total > 0 ? ns[static_cast<size_t>(phase)] / total : 0;
}

struct Expectation {
  std::string series, cls, phase;
  double min_share = 0;     // used by --expect
  bool dominant_only = false;
};

// SERIES/CLASS/PHASE[/MINSHARE]; series names never contain '/'.
bool ParseExpectation(std::string_view spec, bool dominant, Expectation* out) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= spec.size(); i++) {
    if (i == spec.size() || spec[i] == '/') {
      parts.emplace_back(spec.substr(start, i - start));
      start = i + 1;
    }
  }
  if (dominant ? parts.size() != 3 : parts.size() != 4) return false;
  out->series = parts[0];
  out->cls = parts[1];
  out->phase = parts[2];
  out->dominant_only = dominant;
  if (!dominant) {
    char* end = nullptr;
    out->min_share = std::strtod(parts[3].c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Span-tree critical path for the slowest traced exemplar.

struct SpanRow {
  double id = 0, parent = 0;
  std::string name, cat;
  double start_ns = 0, end_ns = 0;
};

void PrintSpanTree(const std::vector<SpanRow>& spans, double id, double base_ns,
                   double total_ns, int depth) {
  for (const SpanRow& s : spans) {
    if (s.id != id) continue;
    double dur = s.end_ns - s.start_ns;
    std::printf("    %*s%-*s %-8s %9.2f %9.2f %5.1f%%\n", 2 * depth, "",
                28 - 2 * depth, s.name.c_str(), s.cat.c_str(),
                (s.start_ns - base_ns) / 1e3, dur / 1e3,
                total_ns > 0 ? 100.0 * dur / total_ns : 0.0);
    // Children, in start order (the writer already sorts by span id which
    // is allocation order, but be explicit).
    std::vector<const SpanRow*> kids;
    for (const SpanRow& c : spans) {
      if (c.parent == s.id && c.id != s.id) kids.push_back(&c);
    }
    std::sort(kids.begin(), kids.end(), [](const SpanRow* a, const SpanRow* b) {
      return a->start_ns != b->start_ns ? a->start_ns < b->start_ns
                                        : a->id < b->id;
    });
    for (const SpanRow* c : kids) {
      PrintSpanTree(spans, c->id, base_ns, total_ns, depth + 1);
    }
  }
}

int Run(int argc, char** argv) {
  std::string attrib_path, ts_path, trace_path, series_filter;
  std::vector<Expectation> expects;
  for (int i = 1; i < argc; i++) {
    std::string_view arg = argv[i];
    auto val = [&arg](std::string_view flag) -> std::string_view {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--ts=", 0) == 0) {
      ts_path = val("--ts=");
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = val("--trace=");
    } else if (arg.rfind("--series=", 0) == 0) {
      series_filter = val("--series=");
    } else if (arg.rfind("--expect=", 0) == 0 ||
               arg.rfind("--expect-dominant=", 0) == 0) {
      const bool dom = arg.rfind("--expect-dominant=", 0) == 0;
      Expectation e;
      if (!ParseExpectation(val(dom ? "--expect-dominant=" : "--expect="), dom,
                            &e)) {
        std::fprintf(stderr, "latency_report: bad expectation spec: %s\n",
                     argv[i]);
        return 2;
      }
      expects.push_back(std::move(e));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "latency_report: unknown flag %s\n", argv[i]);
      return 2;
    } else if (attrib_path.empty()) {
      attrib_path = arg;
    } else {
      std::fprintf(stderr, "latency_report: extra positional arg %s\n",
                   argv[i]);
      return 2;
    }
  }
  if (attrib_path.empty()) {
    std::fprintf(stderr,
                 "usage: latency_report ATTRIB.json [--ts=TS.json] "
                 "[--trace=TRACE.json] [--series=NAME]\n"
                 "         [--expect=SERIES/CLASS/PHASE/MINSHARE]... "
                 "[--expect-dominant=SERIES/CLASS/PHASE]...\n");
    return 2;
  }

  const Json root = Parser(LoadFile(attrib_path)).Parse();
  const std::string& bench = Str(root, "bench");
  std::vector<std::string> phases;
  for (const Json& p : Arr(root, "phases")) {
    if (p.type != Json::kString) throw ParseError{"phase name not a string", 0};
    phases.push_back(p.str);
  }
  const size_t np = phases.size();
  if (np == 0) throw ParseError{"empty phases list", 0};
  auto phase_index = [&phases](std::string_view name) {
    for (size_t i = 0; i < phases.size(); i++) {
      if (phases[i] == name) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<Point> points;
  for (const Json& jp : Arr(root, "points")) {
    Point pt;
    pt.series = Str(jp, "series");
    if (const Json* x = jp.Find("x"); x != nullptr) pt.x = x->number;
    pt.started = static_cast<uint64_t>(Num(jp, "started_ops"));
    pt.measured = static_cast<uint64_t>(Num(jp, "measured_ops"));
    for (const Json& jc : Arr(jp, "classes")) {
      ClassTail ct;
      ct.name = Str(jc, "class");
      ct.count = static_cast<uint64_t>(Num(jc, "count"));
      ct.p999_us = Num(jc, "p999_us");
      for (const Json& v : Arr(jc, "phase_total_ns")) ct.window_ns.push_back(v.number);
      for (const Json& v : Arr(jc, "phase_p999_us")) ct.phase_p999_us.push_back(v.number);
      if (ct.window_ns.size() != np || ct.phase_p999_us.size() != np) {
        throw ParseError{"per-phase array length != phases length", 0};
      }
      ct.tail_ns.assign(np, 0.0);
      ct.exemplars = &Require(jc, "exemplars");
      for (const Json& je : ct.exemplars->arr) {
        const auto& ph = Arr(je, "phase_ns");
        if (ph.size() != np) throw ParseError{"exemplar phase_ns length", 0};
        for (size_t i = 0; i < np; i++) ct.tail_ns[i] += ph[i].number;
      }
      pt.classes.push_back(std::move(ct));
    }
    points.push_back(std::move(pt));
  }

  // ---- the report ----
  std::printf("latency_report: %s (%zu points)\n", bench.c_str(),
              points.size());
  const Json* best_traced = nullptr;  // slowest exemplar with a span tree
  std::string best_traced_label;
  for (const Point& pt : points) {
    if (!series_filter.empty() && pt.series != series_filter) continue;
    if (std::isnan(pt.x)) {
      std::printf("\n== %s   started=%llu measured=%llu\n", pt.series.c_str(),
                  static_cast<unsigned long long>(pt.started),
                  static_cast<unsigned long long>(pt.measured));
    } else {
      std::printf("\n== %s @ x=%g   started=%llu measured=%llu\n",
                  pt.series.c_str(), pt.x,
                  static_cast<unsigned long long>(pt.started),
                  static_cast<unsigned long long>(pt.measured));
    }
    for (const ClassTail& ct : pt.classes) {
      const int dom = DominantPhase(ct.tail_ns);
      std::printf("  %-14s n=%-8llu p999=%.1fus  tail-dominant: %s (%.1f%%)\n",
                  ct.name.c_str(), static_cast<unsigned long long>(ct.count),
                  ct.p999_us, phases[static_cast<size_t>(dom)].c_str(),
                  100.0 * Share(ct.tail_ns, dom));
      std::printf("    %-14s %7s %8s %10s\n", "phase", "tail%", "window%",
                  "p999(us)");
      for (size_t i = 0; i < np; i++) {
        if (ct.tail_ns[i] <= 0 && ct.window_ns[i] <= 0) continue;
        std::printf("    %-14s %6.1f%% %7.1f%% %10.1f\n", phases[i].c_str(),
                    100.0 * Share(ct.tail_ns, static_cast<int>(i)),
                    100.0 * Share(ct.window_ns, static_cast<int>(i)),
                    ct.phase_p999_us[i]);
      }
      for (const Json& je : ct.exemplars->arr) {
        const Json* spans = je.Find("spans");
        if (spans == nullptr || spans->arr.empty()) continue;
        if (best_traced == nullptr ||
            Num(je, "total_ns") > Num(*best_traced, "total_ns")) {
          best_traced = &je;
          best_traced_label = pt.series + " " + ct.name;
        }
      }
    }
  }

  if (best_traced != nullptr) {
    // The pinned tree is the op's whole causal root tree, which can include
    // sibling ops of the same worker chain; display only the spans that
    // overlap this exemplar's own [start, end] interval.
    const double op_start = Num(*best_traced, "start_ns");
    const double op_end = Num(*best_traced, "end_ns");
    std::vector<SpanRow> spans;
    for (const Json& js : best_traced->Find("spans")->arr) {
      SpanRow s;
      s.id = Num(js, "id");
      s.parent = Num(js, "parent");
      s.name = Str(js, "name");
      s.cat = Str(js, "cat");
      s.start_ns = Num(js, "start_ns");
      s.end_ns = Num(js, "end_ns");
      const bool open = s.end_ns < s.start_ns;  // never finished
      if (s.start_ns > op_end || (!open && s.end_ns < op_start)) continue;
      spans.push_back(std::move(s));
    }
    const double total = Num(*best_traced, "total_ns");
    std::printf("\ncritical path: slowest traced op (%s, %.1fus, %zu spans)\n",
                best_traced_label.c_str(), total / 1e3, spans.size());
    std::printf("    %-28s %-8s %9s %9s %6s\n", "span", "cat", "start(us)",
                "dur(us)", "share");
    // Roots: spans whose parent is not in the pinned set.
    for (const SpanRow& s : spans) {
      bool has_parent = false;
      for (const SpanRow& p : spans) {
        if (p.id == s.parent && p.id != s.id) has_parent = true;
      }
      if (!has_parent) {
        PrintSpanTree(spans, s.id, Num(*best_traced, "start_ns"), total, 0);
      }
    }
  }

  // ---- verdicts: dominant tail phase at each series' top load point ----
  std::vector<const Point*> top;  // one per series, in first-seen order
  for (const Point& pt : points) {
    bool found = false;
    for (const Point*& t : top) {
      if (t->series == pt.series) {
        found = true;
        const bool better = std::isnan(t->x) || (!std::isnan(pt.x) && pt.x >= t->x);
        if (better) t = &pt;
      }
    }
    if (!found) top.push_back(&pt);
  }
  std::printf("\n");
  for (const Point* pt : top) {
    std::vector<double> pooled(np, 0.0);
    for (const ClassTail& ct : pt->classes) {
      const int dom = DominantPhase(ct.tail_ns);
      std::printf("verdict: series=\"%s\" x=%g class=%s dominant=%s share=%.3f\n",
                  pt->series.c_str(), pt->x, ct.name.c_str(),
                  phases[static_cast<size_t>(dom)].c_str(),
                  Share(ct.tail_ns, dom));
      for (size_t i = 0; i < np; i++) pooled[i] += ct.tail_ns[i];
    }
    const int dom = DominantPhase(pooled);
    std::printf("verdict: series=\"%s\" x=%g class=* dominant=%s share=%.3f\n",
                pt->series.c_str(), pt->x,
                phases[static_cast<size_t>(dom)].c_str(), Share(pooled, dom));
  }

  // ---- optional companion files ----
  if (!ts_path.empty()) {
    const Json ts = Parser(LoadFile(ts_path)).Parse();
    (void)Str(ts, "bench");
    for (const Json& jp : Arr(ts, "points")) {
      const auto& buckets = Arr(jp, "buckets");
      double peak_out = 0, completions = 0;
      for (const Json& b : buckets) {
        peak_out = std::max(peak_out, Num(b, "outstanding"));
        completions += Num(b, "completions");
        (void)Num(b, "arrivals");
        (void)Num(b, "t_ns");
      }
      std::printf("ts: series=\"%s\" x=%g buckets=%zu bucket_ns=%g "
                  "peak_outstanding=%g completions=%g\n",
                  Str(jp, "series").c_str(),
                  jp.Find("x") != nullptr ? jp.Find("x")->number : NAN,
                  buckets.size(), Num(jp, "bucket_ns"), peak_out, completions);
    }
  }
  if (!trace_path.empty()) {
    const Json tr = Parser(LoadFile(trace_path)).Parse();
    std::printf("trace: events=%zu dropped_spans=%g\n",
                Arr(tr, "traceEvents").size(), Num(tr, "droppedSpans"));
  }

  // ---- expectations ----
  int failures = 0;
  for (const Expectation& e : expects) {
    const Point* pt = nullptr;
    for (const Point* t : top) {
      if (t->series == e.series) pt = t;
    }
    if (pt == nullptr) {
      std::printf("expect FAIL: series \"%s\" not found\n", e.series.c_str());
      failures++;
      continue;
    }
    std::vector<double> tail(np, 0.0);
    bool have_class = false;
    for (const ClassTail& ct : pt->classes) {
      if (e.cls != "*" && ct.name != e.cls) continue;
      have_class = true;
      for (size_t i = 0; i < np; i++) tail[i] += ct.tail_ns[i];
    }
    const int want = phase_index(e.phase);
    if (!have_class || want < 0) {
      std::printf("expect FAIL: %s/%s/%s: unknown %s\n", e.series.c_str(),
                  e.cls.c_str(), e.phase.c_str(),
                  want < 0 ? "phase" : "class");
      failures++;
      continue;
    }
    const int dom = DominantPhase(tail);
    const double share = Share(tail, want);
    const bool ok = e.dominant_only ? dom == want : share >= e.min_share;
    char detail[96];
    if (e.dominant_only) {
      std::snprintf(detail, sizeof(detail), "dominance required, got %s",
                    phases[static_cast<size_t>(dom)].c_str());
    } else {
      std::snprintf(detail, sizeof(detail), "min %.3f", e.min_share);
    }
    std::printf("expect %s: series=\"%s\" class=%s phase=%s share=%.3f (%s)\n",
                ok ? "OK" : "FAIL", e.series.c_str(), e.cls.c_str(),
                e.phase.c_str(), share, detail);
    if (!ok) failures++;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "latency_report: malformed input: %s\n",
                 e.msg.c_str());
    return 2;
  }
}
