// prism-explore: schedule-space exploration driver.
//
// Explore mode (default): run every seed of a workload through N perturbed
// schedules, shrink the first violation per seed, and print a report.
//
//   explore_main --workload=toy --seeds=100 --explore=8 --delta=1000 \
//                --budget=8 --jobs=0 --repro-out=repro.txt
//
//   --workload=NAME           target stack (default toy): toy|rs|kv|tx, a
//                             sync scheme — sync_spin|sync_opt|sync_lease|
//                             sync_prism|sync_buggy (src/sync) — or the
//                             consensus log: consensus|consensus_buggy
//                             (src/consensus)
//   --seeds=N                 sweep workload seeds 1..N (default 20)
//   --seed=N                  explore exactly one seed
//   --explore=N               perturbed runs per seed (default: the
//                             workload's DefaultRuns — 8 for toy/rs/kv/tx/
//                             consensus, 32 for the sync schemes and 128 for
//                             consensus_buggy, whose races need more burst
//                             positions)
//   --delta=NS                enabled-window width in ns (default: the
//                             workload's DefaultDelta — 1000 for toy/rs/kv/
//                             tx/consensus, 2000 for the sync schemes and
//                             consensus_buggy)
//   --budget=N                max reorder decisions per run (default 8)
//   --rate=P                  per-step perturbation probability (default 0.3)
//   --jobs=N                  sweep worker threads (default: all cores)
//   --no-shrink               skip counterexample minimization
//   --repro-out=FILE          write the first minimized reproducer to FILE
//
// Replay mode: re-execute a reproducer artifact and report whether the
// recorded violation still reproduces.
//
//   explore_main --replay=repro.txt
//
// Exit codes: 0 = explored clean (or replay reproduced the violation),
// 1 = exploration found violations, 2 = replay did NOT reproduce,
// 64 = usage error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/explore/explore.h"
#include "src/harness/sweep.h"

namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prism;

  explore::Workload kind = explore::Workload::kToy;
  uint64_t n_seeds = 20;
  int64_t single_seed = -1;
  explore::ExploreOptions opts;
  opts.stop_on_failure = true;
  bool delta_set = false;
  bool runs_set = false;
  int jobs = 0;
  std::string repro_out;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    uint64_t u = 0;
    if (arg.rfind("--workload=", 0) == 0) {
      if (!explore::WorkloadFromName(value("--workload="), &kind)) {
        std::fprintf(stderr, "unknown workload: %s\n", arg.c_str());
        return 64;
      }
    } else if (arg.rfind("--seeds=", 0) == 0 && ParseU64(value("--seeds="), &u)) {
      n_seeds = u;
    } else if (arg.rfind("--seed=", 0) == 0 && ParseU64(value("--seed="), &u)) {
      single_seed = static_cast<int64_t>(u);
    } else if (arg.rfind("--explore=", 0) == 0 &&
               ParseU64(value("--explore="), &u)) {
      opts.runs = static_cast<int>(u);
      runs_set = true;
    } else if (arg.rfind("--delta=", 0) == 0 && ParseU64(value("--delta="), &u)) {
      opts.delta = static_cast<prism::sim::Duration>(u);
      delta_set = true;
    } else if (arg.rfind("--budget=", 0) == 0 &&
               ParseU64(value("--budget="), &u)) {
      opts.budget = static_cast<int>(u);
    } else if (arg.rfind("--rate=", 0) == 0) {
      opts.rate = std::atof(value("--rate=").c_str());
    } else if (arg.rfind("--jobs=", 0) == 0 && ParseU64(value("--jobs="), &u)) {
      jobs = static_cast<int>(u);
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg.rfind("--repro-out=", 0) == 0) {
      repro_out = value("--repro-out=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_path = value("--replay=");
    } else {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return 64;
    }
  }

  // ---- replay mode ----
  if (!replay_path.empty()) {
    explore::Reproducer repro;
    std::string err;
    if (!explore::LoadReproducerFile(replay_path, &repro, &err)) {
      std::fprintf(stderr, "cannot load reproducer: %s\n", err.c_str());
      return 64;
    }
    std::printf("replaying %s: workload=%s seed=%llu delta=%lld "
                "perturbations=%zu disabled-windows=%zu\n",
                replay_path.c_str(), explore::WorkloadName(repro.kind),
                static_cast<unsigned long long>(repro.seed),
                static_cast<long long>(repro.delta),
                repro.perturbations.size(), repro.disabled_windows.size());
    explore::RunOutcome o = explore::ReplayReproducer(repro);
    if (!o.ok) {
      std::printf("violation reproduced (%s):\n%s\n", o.check_name.c_str(),
                  o.error.c_str());
      return 0;
    }
    std::printf("violation did NOT reproduce\n");
    return 2;
  }

  // ---- explore mode ----
  if (!delta_set) opts.delta = explore::DefaultDelta(kind);
  if (!runs_set) opts.runs = explore::DefaultRuns(kind);
  std::vector<uint64_t> seeds;
  if (single_seed >= 0) {
    seeds.push_back(static_cast<uint64_t>(single_seed));
  } else {
    for (uint64_t s = 1; s <= n_seeds; ++s) seeds.push_back(s);
  }
  std::printf("exploring workload=%s seeds=%zu runs/seed=%d delta=%lld "
              "budget=%d rate=%.2f jobs=%d\n",
              explore::WorkloadName(kind), seeds.size(), opts.runs,
              static_cast<long long>(opts.delta), opts.budget, opts.rate,
              jobs > 0 ? jobs : harness::DefaultJobs());

  explore::SweepReport report = explore::ExploreSweep(kind, seeds, opts, jobs);

  bool wrote_repro = false;
  for (const explore::SeedReport& r : report.reports) {
    if (r.failures == 0) continue;
    std::printf("\nseed %llu: %d/%d runs violated %s",
                static_cast<unsigned long long>(r.seed), r.failures, r.runs,
                r.check_name.c_str());
    if (r.repro.has_value()) {
      std::printf(" — shrunk to %zu perturbations, %zu disabled windows "
                  "(%d shrink runs)",
                  r.repro->perturbations.size(),
                  r.repro->disabled_windows.size(), r.shrink_runs);
    }
    std::printf("\n%s\n", r.error.c_str());
    if (r.repro.has_value()) {
      std::printf("reproducer:\n%s",
                  explore::FormatReproducer(*r.repro).c_str());
      if (!repro_out.empty() && !wrote_repro) {
        std::string err;
        if (explore::SaveReproducerFile(repro_out, *r.repro, &err)) {
          std::printf("reproducer written to %s — replay with "
                      "--replay=%s\n",
                      repro_out.c_str(), repro_out.c_str());
          wrote_repro = true;
        } else {
          std::fprintf(stderr, "%s\n", err.c_str());
        }
      }
    }
  }

  std::printf("\n%d/%d seeds clean, %d total runs\n",
              report.seeds - report.failing_seeds, report.seeds,
              report.total_runs);
  return report.failing_seeds > 0 ? 1 : 0;
}
