# Bench smoke test: run abl_sim_micro in fast mode with the google-benchmark
# suite filtered out (the engine-throughput probes always run and write
# results/BENCH_sim.json), then validate the JSON parses and carries the
# expected schema. With -DFIGS_BIN=<driver> it also smoke-runs a converted
# figure driver through the parallel sweep harness and validates the unified
# results/BENCH_figs.json it emits. Invoked by CTest as
#   cmake -DBENCH_BIN=<abl_sim_micro> -DFIGS_BIN=<fig2_topology>
#         -DWORK_DIR=<build dir> -P bench_smoke.cmake
if(NOT BENCH_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "bench_smoke.cmake needs -DBENCH_BIN=... and -DWORK_DIR=...")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1
          ${BENCH_BIN} --benchmark_filter=^$
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "abl_sim_micro exited with ${rc}:\n${out}\n${err}")
endif()

set(json_path ${WORK_DIR}/results/BENCH_sim.json)
if(NOT EXISTS ${json_path})
  message(FATAL_ERROR "bench did not write ${json_path}")
endif()
file(READ ${json_path} doc)

# string(JSON) raises a hard error on malformed JSON or missing members.
string(JSON bench_name GET "${doc}" bench)
if(NOT bench_name STREQUAL "abl_sim_micro")
  message(FATAL_ERROR "unexpected bench name '${bench_name}' in ${json_path}")
endif()
string(JSON fast GET "${doc}" fast_mode)
if(NOT fast STREQUAL "ON" AND NOT fast STREQUAL "true")
  message(FATAL_ERROR "PRISM_BENCH_FAST=1 not honored (fast_mode=${fast})")
endif()

foreach(probe zero_delay timer_wheel mixed)
  string(JSON events GET "${doc}" ${probe} events)
  if(events LESS_EQUAL 0)
    message(FATAL_ERROR "probe ${probe}: events=${events}, expected > 0")
  endif()
  string(JSON rate GET "${doc}" ${probe} events_per_sec)
  if(rate LESS_EQUAL 0)
    message(FATAL_ERROR "probe ${probe}: events_per_sec=${rate}, expected > 0")
  endif()
  # Schema presence only — values are machine-dependent.
  string(JSON ignored GET "${doc}" ${probe} wall_seconds)
  string(JSON ignored GET "${doc}" ${probe} simulated_ns)
  foreach(stat zero_delay_events timer_events overflow_events heap_callables
               pool_blocks)
    string(JSON ignored GET "${doc}" ${probe} engine_stats ${stat})
  endforeach()
endforeach()

message(STATUS "BENCH_sim.json OK: all probes present with positive rates")

if(NOT FIGS_BIN)
  return()
endif()

# ---- unified figure results (results/BENCH_figs.json) ----
# Run the driver through the sweep harness with two worker threads; the
# entry it merges into BENCH_figs.json must carry the shared schema.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${FIGS_BIN} --jobs=2
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "figure driver exited with ${rc}:\n${out}\n${err}")
endif()

get_filename_component(figs_key ${FIGS_BIN} NAME_WE)
set(figs_path ${WORK_DIR}/results/BENCH_figs.json)
if(NOT EXISTS ${figs_path})
  message(FATAL_ERROR "driver did not write ${figs_path}")
endif()
file(READ ${figs_path} figs)

string(JSON entry GET "${figs}" ${figs_key})
string(JSON ignored GET "${figs}" ${figs_key} title)
string(JSON fast GET "${figs}" ${figs_key} fast_mode)
if(NOT fast STREQUAL "ON" AND NOT fast STREQUAL "true")
  message(FATAL_ERROR "PRISM_BENCH_FAST=1 not honored (fast_mode=${fast})")
endif()
string(JSON jobs GET "${figs}" ${figs_key} jobs)
if(NOT jobs EQUAL 2)
  message(FATAL_ERROR "--jobs=2 not recorded (jobs=${jobs})")
endif()
string(JSON ignored GET "${figs}" ${figs_key} wall_seconds)
string(JSON events GET "${figs}" ${figs_key} sim_events)
if(events LESS_EQUAL 0)
  message(FATAL_ERROR "sim_events=${events}, expected > 0")
endif()
string(JSON rate GET "${figs}" ${figs_key} events_per_sec)
if(rate LESS_EQUAL 0)
  message(FATAL_ERROR "events_per_sec=${rate}, expected > 0")
endif()

string(JSON n_series LENGTH "${figs}" ${figs_key} series)
if(n_series LESS_EQUAL 0)
  message(FATAL_ERROR "entry ${figs_key} has no series")
endif()
math(EXPR last_series "${n_series} - 1")
foreach(s RANGE ${last_series})
  string(JSON ignored GET "${figs}" ${figs_key} series ${s} name)
  string(JSON n_points LENGTH "${figs}" ${figs_key} series ${s} points)
  if(n_points LESS_EQUAL 0)
    message(FATAL_ERROR "series ${s} of ${figs_key} has no points")
  endif()
  math(EXPR last_point "${n_points} - 1")
  foreach(p RANGE ${last_point})
    foreach(field clients tput_mops mean_us p50_us p99_us p999_us abort_rate
                  sim_events)
      string(JSON ignored GET "${figs}" ${figs_key} series ${s} points ${p}
             ${field})
    endforeach()
  endforeach()
endforeach()

message(STATUS
  "BENCH_figs.json OK: ${figs_key} entry valid with ${n_series} series")

# ---- observability: --trace/--metrics run ----
# Re-run the same driver with tracing and metrics on. Requirements:
#  * stdout is byte-identical to the untraced run (minus the two obs status
#    lines) — tracing must not perturb the replay or the printed tables;
#  * the Chrome trace JSON parses and contains events;
#  * the per-point metrics JSON parses with one entry per sweep cell;
#  * the merged BENCH_figs.json entry carries the Table-1 complexity fields.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${FIGS_BIN} --jobs=2
          --trace=results/trace_smoke.json --metrics
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE traced_out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced figure driver exited with ${rc}:\n${traced_out}\n${err}")
endif()

string(REGEX REPLACE "trace: [^\n]*\n" "" stripped "${traced_out}")
string(REGEX REPLACE "metrics: [^\n]*\n" "" stripped "${stripped}")
string(REGEX REPLACE "attrib: [^\n]*\n" "" stripped "${stripped}")
string(REGEX REPLACE "timeseries: [^\n]*\n" "" stripped "${stripped}")
if(NOT out STREQUAL stripped)
  message(FATAL_ERROR "tracing changed the driver's stdout:\n"
          "--- untraced ---\n${out}\n--- traced (obs lines stripped) ---\n"
          "${stripped}")
endif()
if(NOT traced_out MATCHES "trace: [0-9]+ spans")
  message(FATAL_ERROR "traced run printed no trace status line:\n${traced_out}")
endif()

set(trace_path ${WORK_DIR}/results/trace_smoke.json)
if(NOT EXISTS ${trace_path})
  message(FATAL_ERROR "driver did not write ${trace_path}")
endif()
file(READ ${trace_path} trace)
string(JSON n_events LENGTH "${trace}" traceEvents)
if(n_events LESS_EQUAL 0)
  message(FATAL_ERROR "trace has no events")
endif()
# At least one async begin event with a causal parent field.
if(NOT trace MATCHES "\"ph\":\"b\"")
  message(FATAL_ERROR "trace has no async begin events")
endif()
if(NOT trace MATCHES "\"parent\":")
  message(FATAL_ERROR "trace spans carry no parent attribution")
endif()

set(metrics_path ${WORK_DIR}/results/METRICS_${figs_key}.json)
if(NOT EXISTS ${metrics_path})
  message(FATAL_ERROR "driver did not write ${metrics_path}")
endif()
file(READ ${metrics_path} metrics)
string(JSON mbench GET "${metrics}" bench)
if(NOT mbench STREQUAL ${figs_key})
  message(FATAL_ERROR "unexpected bench '${mbench}' in ${metrics_path}")
endif()
string(JSON n_mpoints LENGTH "${metrics}" points)
if(n_mpoints LESS_EQUAL 0)
  message(FATAL_ERROR "metrics dump has no points")
endif()
string(JSON ignored GET "${metrics}" points 0 series)
string(JSON n_mvals LENGTH "${metrics}" points 0 metrics)
if(n_mvals LESS_EQUAL 0)
  message(FATAL_ERROR "metrics dump point 0 has no metric values")
endif()
string(JSON ignored GET "${metrics}" points 0 metrics 0 component)
string(JSON ignored GET "${metrics}" points 0 metrics 0 name)

# ---- tail-attribution artifacts (ATTRIB_/TS_) ----
# The traced run also dumps the per-point phase decomposition and the
# windowed time-series that tools/latency_report reads. Validate the schema:
# a phase-name table, per-class exact phase sums, p999 exemplars, and
# per-bucket arrival/completion/outstanding counts.
set(attrib_path ${WORK_DIR}/results/ATTRIB_${figs_key}.json)
if(NOT EXISTS ${attrib_path})
  message(FATAL_ERROR "traced driver did not write ${attrib_path}")
endif()
file(READ ${attrib_path} attrib)
string(JSON abench GET "${attrib}" bench)
if(NOT abench STREQUAL ${figs_key})
  message(FATAL_ERROR "unexpected bench '${abench}' in ${attrib_path}")
endif()
string(JSON n_phases LENGTH "${attrib}" phases)
if(NOT n_phases EQUAL 7)
  message(FATAL_ERROR "expected 7 phase names, got ${n_phases}")
endif()
string(JSON n_apoints LENGTH "${attrib}" points)
if(n_apoints LESS_EQUAL 0)
  message(FATAL_ERROR "attribution dump has no points")
endif()
string(JSON ignored GET "${attrib}" points 0 series)
string(JSON ignored GET "${attrib}" points 0 started_ops)
string(JSON ignored GET "${attrib}" points 0 measured_ops)
string(JSON n_classes LENGTH "${attrib}" points 0 classes)
if(n_classes LESS_EQUAL 0)
  message(FATAL_ERROR "attribution point 0 has no client classes")
endif()
foreach(field class count p999_us)
  string(JSON ignored GET "${attrib}" points 0 classes 0 ${field})
endforeach()
foreach(arr phase_total_ns phase_p999_us)
  string(JSON n LENGTH "${attrib}" points 0 classes 0 ${arr})
  if(NOT n EQUAL 7)
    message(FATAL_ERROR "classes[0].${arr} has ${n} entries, expected 7")
  endif()
endforeach()
string(JSON n_ex LENGTH "${attrib}" points 0 classes 0 exemplars)
if(n_ex LESS_EQUAL 0)
  message(FATAL_ERROR "attribution point 0 class 0 pinned no exemplars")
endif()
foreach(field seq start_ns end_ns total_ns retransmits)
  string(JSON ignored GET "${attrib}" points 0 classes 0 exemplars 0 ${field})
endforeach()
string(JSON n LENGTH "${attrib}" points 0 classes 0 exemplars 0 phase_ns)
if(NOT n EQUAL 7)
  message(FATAL_ERROR "exemplar phase_ns has ${n} entries, expected 7")
endif()

set(ts_path ${WORK_DIR}/results/TS_${figs_key}.json)
if(NOT EXISTS ${ts_path})
  message(FATAL_ERROR "traced driver did not write ${ts_path}")
endif()
file(READ ${ts_path} ts)
string(JSON tbench GET "${ts}" bench)
if(NOT tbench STREQUAL ${figs_key})
  message(FATAL_ERROR "unexpected bench '${tbench}' in ${ts_path}")
endif()
string(JSON n_tpoints LENGTH "${ts}" points)
if(n_tpoints LESS_EQUAL 0)
  message(FATAL_ERROR "time-series dump has no points")
endif()
string(JSON bucket_ns GET "${ts}" points 0 bucket_ns)
if(bucket_ns LESS_EQUAL 0)
  message(FATAL_ERROR "points[0].bucket_ns=${bucket_ns}, expected > 0")
endif()
string(JSON n_buckets LENGTH "${ts}" points 0 buckets)
if(n_buckets LESS_EQUAL 0)
  message(FATAL_ERROR "time-series point 0 has no buckets")
endif()
foreach(field t_ns arrivals completions retransmits outstanding total_ns)
  string(JSON ignored GET "${ts}" points 0 buckets 0 ${field})
endforeach()

# Protocol-complexity fields merged into BENCH_figs.json (the traced run
# rewrote the entry; the fields are emitted on every run regardless).
file(READ ${figs_path} figs)
string(JSON n_ops LENGTH "${figs}" ${figs_key} series 0 points 0 ops)
if(n_ops LESS_EQUAL 0)
  message(FATAL_ERROR "entry ${figs_key} carries no per-op complexity rows")
endif()
foreach(field op count round_trips messages bytes_out bytes_in cpu_actions
              doorbells cq_polls round_trips_per_op messages_per_op
              bytes_per_op cpu_actions_per_op doorbells_per_op
              cq_polls_per_op client_cpu_actions_per_op)
  string(JSON ignored GET "${figs}" ${figs_key} series 0 points 0 ops 0
         ${field})
endforeach()

message(STATUS "observability OK: stdout byte-identical under --trace, "
  "${n_events} trace events, ${n_mpoints} metric points, complexity fields "
  "present")

if(NOT OVERLOAD_BIN)
  return()
endif()

# ---- open-loop overload driver ----
# A fast-mode sweep point: validates the fig_overload entry (offered_mops +
# p999 tails + batching complexity rows; the driver itself PRISM_CHECKs that
# batching cuts client CPU actions per op with round trips unchanged), then
# the flat-memory guard at 100k clients (≤64 B marginal RSS per client).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${OVERLOAD_BIN} --jobs=2
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig_overload exited with ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "overload-assert")
  message(FATAL_ERROR "fig_overload printed no batching assertions:\n${out}")
endif()

file(READ ${figs_path} figs)
string(JSON n_series LENGTH "${figs}" fig_overload series)
if(NOT n_series EQUAL 4)
  message(FATAL_ERROR "fig_overload expected 4 series, got ${n_series}")
endif()
string(JSON n_points LENGTH "${figs}" fig_overload series 0 points)
math(EXPR last_point "${n_points} - 1")
math(EXPR last_series "${n_series} - 1")
foreach(s RANGE ${last_series})
  foreach(p RANGE ${last_point})
    foreach(field clients offered_mops tput_mops mean_us p50_us p99_us
                  p999_us sim_events)
      string(JSON ignored GET "${figs}" fig_overload series ${s} points ${p}
             ${field})
    endforeach()
    string(JSON n_ops LENGTH "${figs}" fig_overload series ${s} points ${p}
           ops)
    if(NOT n_ops EQUAL 2)
      message(FATAL_ERROR
        "fig_overload series ${s} point ${p}: expected 2 op rows, got ${n_ops}")
    endif()
    foreach(o RANGE 1)
      foreach(field doorbells cq_polls doorbells_per_op cq_polls_per_op
                    client_cpu_actions_per_op)
        string(JSON ignored GET "${figs}" fig_overload series ${s} points ${p}
               ops ${o} ${field})
      endforeach()
    endforeach()
  endforeach()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1
          ${OVERLOAD_BIN} --guard=100000
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig_overload --guard=100000 failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "guard: ok")
  message(FATAL_ERROR "guard did not report ok:\n${out}")
endif()

message(STATUS "fig_overload OK: 4 series validated, flat-memory guard passed")

if(NOT SYNC_BIN)
  return()
endif()

# ---- synchronization-scheme spectrum driver ----
# A fast-mode sweep: the fig_sync entry must carry one series per scheme,
# each point with positive throughput and round_trips_per_op complexity rows
# for both op classes. The driver itself PRISM_CHECKs that PRISM-native
# chains beat CAS-spinlock on round trips per op at the top offered rate, so
# a zero exit already certifies the figure's headline claim.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${SYNC_BIN} --jobs=2
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig_sync exited with ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "sync-assert")
  message(FATAL_ERROR "fig_sync printed no round-trip assertions:\n${out}")
endif()

file(READ ${figs_path} figs)
string(JSON n_series LENGTH "${figs}" fig_sync series)
if(NOT n_series EQUAL 4)
  message(FATAL_ERROR "fig_sync expected 4 scheme series, got ${n_series}")
endif()
string(JSON n_points LENGTH "${figs}" fig_sync series 0 points)
math(EXPR last_point "${n_points} - 1")
math(EXPR last_series "${n_series} - 1")
foreach(s RANGE ${last_series})
  string(JSON sname GET "${figs}" fig_sync series ${s} name)
  foreach(p RANGE ${last_point})
    string(JSON tput GET "${figs}" fig_sync series ${s} points ${p} tput_mops)
    if(tput LESS_EQUAL 0)
      message(FATAL_ERROR
        "fig_sync series '${sname}' point ${p}: tput_mops=${tput}, expected > 0")
    endif()
    foreach(field clients offered_mops mean_us p50_us p99_us p999_us
                  sim_events)
      string(JSON ignored GET "${figs}" fig_sync series ${s} points ${p}
             ${field})
    endforeach()
    string(JSON n_ops LENGTH "${figs}" fig_sync series ${s} points ${p} ops)
    if(NOT n_ops EQUAL 2)
      message(FATAL_ERROR
        "fig_sync series '${sname}' point ${p}: expected 2 op rows, got ${n_ops}")
    endif()
    foreach(o RANGE 1)
      string(JSON rt GET "${figs}" fig_sync series ${s} points ${p} ops ${o}
             round_trips_per_op)
      if(rt LESS_EQUAL 0)
        message(FATAL_ERROR
          "fig_sync series '${sname}' point ${p} op ${o}: "
          "round_trips_per_op=${rt}, expected > 0")
      endif()
      foreach(field op count round_trips messages_per_op)
        string(JSON ignored GET "${figs}" fig_sync series ${s} points ${p}
               ops ${o} ${field})
      endforeach()
    endforeach()
  endforeach()
endforeach()

message(STATUS "fig_sync OK: ${n_series} scheme series with positive "
  "throughput and round_trips_per_op rows")

if(NOT CONSENSUS_BIN)
  return()
endif()

# ---- consensus vs ABD driver ----
# A fast-mode sweep: the fig_consensus entry must carry the PMP-consensus
# and ABD-LOCK load series (two op-class complexity rows each) plus the
# failover series (one cons.failover row, elections as rkey revocations).
# The driver itself PRISM_CHECKs the accountant-exact 2-RT commit at n=3
# and that it beats ABD-LOCK's round-trip bill, so a zero exit already
# certifies the figure's headline claim.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${CONSENSUS_BIN} --jobs=2
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig_consensus exited with ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "consensus-assert")
  message(FATAL_ERROR "fig_consensus printed no round-trip assertions:\n${out}")
endif()

file(READ ${figs_path} figs)
string(JSON n_series LENGTH "${figs}" fig_consensus series)
if(NOT n_series EQUAL 3)
  message(FATAL_ERROR "fig_consensus expected 3 series, got ${n_series}")
endif()
math(EXPR last_series "${n_series} - 1")
foreach(s RANGE ${last_series})
  string(JSON sname GET "${figs}" fig_consensus series ${s} name)
  if(s EQUAL 0 AND NOT sname STREQUAL "PMP-consensus")
    message(FATAL_ERROR "series 0 should be PMP-consensus, got '${sname}'")
  endif()
  if(s EQUAL 1 AND NOT sname STREQUAL "ABD-LOCK")
    message(FATAL_ERROR "series 1 should be ABD-LOCK, got '${sname}'")
  endif()
  if(s EQUAL 2 AND NOT sname STREQUAL "failover")
    message(FATAL_ERROR "series 2 should be failover, got '${sname}'")
  endif()
  string(JSON n_points LENGTH "${figs}" fig_consensus series ${s} points)
  if(n_points LESS_EQUAL 0)
    message(FATAL_ERROR "fig_consensus series '${sname}' has no points")
  endif()
  math(EXPR last_point "${n_points} - 1")
  foreach(p RANGE ${last_point})
    string(JSON tput GET "${figs}" fig_consensus series ${s} points ${p}
           tput_mops)
    if(tput LESS_EQUAL 0)
      message(FATAL_ERROR "fig_consensus series '${sname}' point ${p}: "
        "tput_mops=${tput}, expected > 0")
    endif()
    foreach(field clients offered_mops mean_us p50_us p99_us p999_us
                  sim_events)
      string(JSON ignored GET "${figs}" fig_consensus series ${s} points ${p}
             ${field})
    endforeach()
    string(JSON n_ops LENGTH "${figs}" fig_consensus series ${s} points ${p}
           ops)
    if(sname STREQUAL "failover")
      set(want_ops 1)
    else()
      set(want_ops 2)
    endif()
    if(NOT n_ops EQUAL ${want_ops})
      message(FATAL_ERROR "fig_consensus series '${sname}' point ${p}: "
        "expected ${want_ops} op rows, got ${n_ops}")
    endif()
    math(EXPR last_op "${n_ops} - 1")
    foreach(o RANGE ${last_op})
      string(JSON rt GET "${figs}" fig_consensus series ${s} points ${p}
             ops ${o} round_trips_per_op)
      if(rt LESS_EQUAL 0)
        message(FATAL_ERROR "fig_consensus series '${sname}' point ${p} "
          "op ${o}: round_trips_per_op=${rt}, expected > 0")
      endif()
      foreach(field op count round_trips messages_per_op)
        string(JSON ignored GET "${figs}" fig_consensus series ${s} points ${p}
               ops ${o} ${field})
      endforeach()
    endforeach()
  endforeach()
endforeach()

message(STATUS "fig_consensus OK: PMP-consensus/ABD-LOCK/failover series "
  "with positive throughput and round_trips_per_op rows")

# ---- windowed parallel DES scaling (results/BENCH_psim.json) ----
# Fast-mode run of the intra-simulation parallelism ablation: validates the
# schema, that the parallel rows actually ran parallel (no serial_reason,
# windows > 0), and that every cores value executed the identical schedule.
if(NOT PSIM_BIN)
  return()
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${PSIM_BIN}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "abl_psim exited with ${rc}:\n${out}\n${err}")
endif()

set(psim_path ${WORK_DIR}/results/BENCH_psim.json)
if(NOT EXISTS ${psim_path})
  message(FATAL_ERROR "abl_psim did not write ${psim_path}")
endif()
file(READ ${psim_path} psim)

string(JSON bench_name GET "${psim}" bench)
if(NOT bench_name STREQUAL "abl_psim")
  message(FATAL_ERROR "unexpected bench name '${bench_name}' in ${psim_path}")
endif()
string(JSON fast GET "${psim}" fast_mode)
if(NOT fast STREQUAL "ON" AND NOT fast STREQUAL "true")
  message(FATAL_ERROR "PRISM_BENCH_FAST=1 not honored (fast_mode=${fast})")
endif()
string(JSON ignored GET "${psim}" cost_model)

string(JSON n_rows LENGTH "${psim}" rows)
if(n_rows LESS 2)
  message(FATAL_ERROR "expected >= 2 cores rows, got ${n_rows}")
endif()
string(JSON base_events GET "${psim}" rows 0 events)
math(EXPR last_row "${n_rows} - 1")
foreach(r RANGE ${last_row})
  foreach(field hosts cores partitions events deliveries windows barriers
                wire_messages wall_seconds events_per_sec speedup_vs_serial)
    string(JSON ignored GET "${psim}" rows ${r} ${field})
  endforeach()
  string(JSON events GET "${psim}" rows ${r} events)
  if(NOT events EQUAL base_events)
    message(FATAL_ERROR
      "row ${r}: events=${events} != serial baseline ${base_events} — "
      "the parallel core executed a different schedule")
  endif()
  string(JSON cores GET "${psim}" rows ${r} cores)
  if(cores GREATER 1)
    string(JSON reason GET "${psim}" rows ${r} serial_reason)
    if(NOT reason STREQUAL "")
      message(FATAL_ERROR
        "row ${r} (cores=${cores}) fell back to serial: ${reason}")
    endif()
    string(JSON windows GET "${psim}" rows ${r} windows)
    if(windows LESS_EQUAL 0)
      message(FATAL_ERROR "row ${r} (cores=${cores}): windows=${windows}")
    endif()
  endif()
endforeach()

message(STATUS "BENCH_psim.json OK: ${n_rows} cores rows, identical "
  "schedules, parallel rows ran windowed")
