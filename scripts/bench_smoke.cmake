# Bench smoke test: run abl_sim_micro in fast mode with the google-benchmark
# suite filtered out (the engine-throughput probes always run and write
# results/BENCH_sim.json), then validate the JSON parses and carries the
# expected schema. Invoked by CTest as
#   cmake -DBENCH_BIN=<abl_sim_micro> -DWORK_DIR=<build dir> -P bench_smoke.cmake
if(NOT BENCH_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "bench_smoke.cmake needs -DBENCH_BIN=... and -DWORK_DIR=...")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1
          ${BENCH_BIN} --benchmark_filter=^$
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "abl_sim_micro exited with ${rc}:\n${out}\n${err}")
endif()

set(json_path ${WORK_DIR}/results/BENCH_sim.json)
if(NOT EXISTS ${json_path})
  message(FATAL_ERROR "bench did not write ${json_path}")
endif()
file(READ ${json_path} doc)

# string(JSON) raises a hard error on malformed JSON or missing members.
string(JSON bench_name GET "${doc}" bench)
if(NOT bench_name STREQUAL "abl_sim_micro")
  message(FATAL_ERROR "unexpected bench name '${bench_name}' in ${json_path}")
endif()
string(JSON fast GET "${doc}" fast_mode)
if(NOT fast STREQUAL "ON" AND NOT fast STREQUAL "true")
  message(FATAL_ERROR "PRISM_BENCH_FAST=1 not honored (fast_mode=${fast})")
endif()

foreach(probe zero_delay timer_wheel mixed)
  string(JSON events GET "${doc}" ${probe} events)
  if(events LESS_EQUAL 0)
    message(FATAL_ERROR "probe ${probe}: events=${events}, expected > 0")
  endif()
  string(JSON rate GET "${doc}" ${probe} events_per_sec)
  if(rate LESS_EQUAL 0)
    message(FATAL_ERROR "probe ${probe}: events_per_sec=${rate}, expected > 0")
  endif()
  # Schema presence only — values are machine-dependent.
  string(JSON ignored GET "${doc}" ${probe} wall_seconds)
  string(JSON ignored GET "${doc}" ${probe} simulated_ns)
  foreach(stat zero_delay_events timer_events overflow_events heap_callables
               pool_blocks)
    string(JSON ignored GET "${doc}" ${probe} engine_stats ${stat})
  endforeach()
endforeach()

message(STATUS "BENCH_sim.json OK: all probes present with positive rates")
