# Tail-latency attribution smoke test: drive the traced overload and sync
# figure drivers, pin the determinism of their attribution artifacts across
# sweep parallelism, and assert the paper-level verdicts with the real
# tools/latency_report binary. Invoked by CTest as
#   cmake -DOVERLOAD_BIN=<fig_overload> -DSYNC_BIN=<fig_sync>
#         -DREPORT_BIN=<latency_report> -DWORK_DIR=<scratch dir>
#         -P latency_smoke.cmake
#
# 1. fig_overload traced at --jobs=2, then --jobs=1: ATTRIB/TS/trace files
#    must be byte-identical (recording never perturbs the replay).
# 2. latency_report on the overload artifacts: post-saturation p999 of the
#    open-loop get class must be >= 80% backlog_wait in every series -> exit 0.
# 3. Same determinism + verdict pass for fig_sync: the CAS-spinlock tail is
#    sync_spin-dominated (>= 70% pooled), PRISM-native's stays wire-dominated.
# 4. Same pass for fig_consensus: the failover tail (leader change by rkey
#    revocation) is responder-dominated — Deregister+Register handler work,
#    never sync_spin.
# 5. Exit-code contract: failed expectation -> 1, malformed input -> 2.
if(NOT OVERLOAD_BIN OR NOT SYNC_BIN OR NOT CONSENSUS_BIN OR NOT REPORT_BIN
   OR NOT WORK_DIR)
  message(FATAL_ERROR "latency_smoke.cmake needs -DOVERLOAD_BIN=... "
          "-DSYNC_BIN=... -DCONSENSUS_BIN=... -DREPORT_BIN=... -DWORK_DIR=...")
endif()

# Scratch tree separate from the bench_smoke WORK_DIR so concurrent ctest -j
# runs never race on results/BENCH_figs.json.
file(MAKE_DIRECTORY ${WORK_DIR}/results)

function(run_traced BIN JOBS TRACE_NAME)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env PRISM_BENCH_FAST=1 ${BIN}
            --jobs=${JOBS} --trace=results/${TRACE_NAME}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
  )
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${BIN} --jobs=${JOBS} --trace exited with ${rc}:\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "attrib: [0-9]+ points")
    message(FATAL_ERROR "traced run printed no attrib status line:\n${out}")
  endif()
  if(NOT out MATCHES "timeseries: ")
    message(FATAL_ERROR "traced run printed no timeseries status line:\n${out}")
  endif()
endfunction()

function(require_identical A B WHAT)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${A} ${B}
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${WHAT} differs between --jobs=2 and --jobs=1 (${A} vs ${B}): "
      "attribution recording is not replay-deterministic")
  endif()
endfunction()

# report(<rc_var> <out_var> args...): run latency_report, capture exit + stdout.
function(report RC_VAR OUT_VAR)
  execute_process(
    COMMAND ${REPORT_BIN} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
  )
  set(${RC_VAR} ${rc} PARENT_SCOPE)
  set(${OUT_VAR} "${out}\n${err}" PARENT_SCOPE)
endfunction()

# ---- fig_overload: determinism across sweep parallelism ----
run_traced(${OVERLOAD_BIN} 2 trace_overload.json)
foreach(f ATTRIB_fig_overload.json TS_fig_overload.json trace_overload.json)
  file(RENAME ${WORK_DIR}/results/${f} ${WORK_DIR}/results/j2_${f})
endforeach()
run_traced(${OVERLOAD_BIN} 1 trace_overload.json)
foreach(f ATTRIB_fig_overload.json TS_fig_overload.json trace_overload.json)
  require_identical(${WORK_DIR}/results/j2_${f} ${WORK_DIR}/results/${f} ${f})
endforeach()
message(STATUS "fig_overload attribution byte-identical across --jobs=1/2")

# ---- fig_overload: post-saturation p999 is client-backlog time ----
# The acceptance bar: >= 80% of the slowest-K (p999 exemplar) latency of the
# open-loop get class attributed to backlog_wait in every series, and
# backlog_wait the argmax phase for the pooled point as well.
report(rc out
  --ts=results/TS_fig_overload.json
  --trace=results/trace_overload.json
  "--expect=Pilaf/kv.get/backlog_wait/0.80"
  "--expect=Pilaf (batched)/kv.get/backlog_wait/0.80"
  "--expect=PRISM-KV/kv.get/backlog_wait/0.80"
  "--expect=PRISM-KV (batched)/kv.get/backlog_wait/0.80"
  "--expect-dominant=Pilaf/*/backlog_wait"
  "--expect-dominant=Pilaf (batched)/*/backlog_wait"
  "--expect-dominant=PRISM-KV/*/backlog_wait"
  "--expect-dominant=PRISM-KV (batched)/*/backlog_wait"
  results/ATTRIB_fig_overload.json)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "overload tail not backlog_wait-dominated (rc=${rc}):\n${out}")
endif()
if(NOT out MATCHES "critical path: slowest traced op")
  message(FATAL_ERROR "report printed no critical-path section:\n${out}")
endif()
message(STATUS "fig_overload OK: post-saturation p999 >= 80% backlog_wait "
  "in all 4 series")

# ---- fig_sync: determinism + scheme-dependent tail phase ----
run_traced(${SYNC_BIN} 2 trace_sync.json)
foreach(f ATTRIB_fig_sync.json TS_fig_sync.json trace_sync.json)
  file(RENAME ${WORK_DIR}/results/${f} ${WORK_DIR}/results/j2_${f})
endforeach()
run_traced(${SYNC_BIN} 1 trace_sync.json)
foreach(f ATTRIB_fig_sync.json TS_fig_sync.json trace_sync.json)
  require_identical(${WORK_DIR}/results/j2_${f} ${WORK_DIR}/results/${f} ${f})
endforeach()
message(STATUS "fig_sync attribution byte-identical across --jobs=1/2")

report(rc out
  --ts=results/TS_fig_sync.json
  --trace=results/trace_sync.json
  "--expect=CAS-spinlock/*/sync_spin/0.70"
  "--expect-dominant=CAS-spinlock/*/sync_spin"
  "--expect-dominant=PRISM-native chain/*/wire"
  results/ATTRIB_fig_sync.json)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sync scheme tails misattributed (rc=${rc}):\n${out}")
endif()
message(STATUS "fig_sync OK: spinlock tail sync_spin-dominated, "
  "PRISM-native tail wire-dominated")

# ---- fig_consensus: determinism + revocation-failover tail phase ----
run_traced(${CONSENSUS_BIN} 2 trace_consensus.json)
foreach(f ATTRIB_fig_consensus.json TS_fig_consensus.json trace_consensus.json)
  file(RENAME ${WORK_DIR}/results/${f} ${WORK_DIR}/results/j2_${f})
endforeach()
run_traced(${CONSENSUS_BIN} 1 trace_consensus.json)
foreach(f ATTRIB_fig_consensus.json TS_fig_consensus.json trace_consensus.json)
  require_identical(${WORK_DIR}/results/j2_${f} ${WORK_DIR}/results/${f} ${f})
endforeach()
message(STATUS "fig_consensus attribution byte-identical across --jobs=1/2")

# The failover class IS the rkey-revocation handoff: its tail must be
# dominated by responder time (the replicas' Deregister+Register grant
# handlers), with the wire round trips second — never sync_spin, because
# permission revocation needs no spinning failure detector.
report(rc out
  --ts=results/TS_fig_consensus.json
  --trace=results/trace_consensus.json
  "--expect=failover/cons.failover/responder/0.40"
  "--expect-dominant=failover/cons.failover/responder"
  "--expect-dominant=failover/*/responder"
  results/ATTRIB_fig_consensus.json)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "failover tail not responder-dominated (rc=${rc}):\n${out}")
endif()
message(STATUS "fig_consensus OK: revocation-failover tail "
  "responder-dominated, not sync_spin")

# ---- exit-code contract ----
# A failed expectation must exit 1 (the spinlock tail is NOT wire-dominated).
report(rc out "--expect-dominant=CAS-spinlock/*/wire"
       results/ATTRIB_fig_sync.json)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "failed expectation should exit 1, got ${rc}:\n${out}")
endif()

# Truncated JSON must exit 2.
file(READ ${WORK_DIR}/results/ATTRIB_fig_sync.json doc)
string(LENGTH "${doc}" len)
math(EXPR half "${len} / 2")
string(SUBSTRING "${doc}" 0 ${half} truncated)
file(WRITE ${WORK_DIR}/results/ATTRIB_truncated.json "${truncated}")
report(rc out results/ATTRIB_truncated.json)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "truncated ATTRIB input should exit 2, got ${rc}:\n${out}")
endif()

# Well-formed JSON of the wrong shape (an ATTRIB file where a Chrome trace is
# expected) must also exit 2, not crash or silently pass.
report(rc out --trace=results/ATTRIB_fig_sync.json
       results/ATTRIB_fig_sync.json)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "trace-shaped validation of an ATTRIB file should exit 2, got ${rc}:\n${out}")
endif()

message(STATUS
  "latency smoke OK: deterministic artifacts, verdicts asserted, "
  "exit codes 1/2 pinned")
