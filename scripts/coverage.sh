#!/usr/bin/env bash
# Line-coverage gate for the correctness-critical layers.
#
# Builds the gcov-instrumented tree (build-cov/, preset "coverage"), runs
# the checker/oracle/exploration test binaries, then aggregates raw gcov
# line counts for every translation unit under src/check/, src/explore/,
# src/sync/, and src/consensus/
# and fails if the combined line coverage drops below the floor.
#
#   scripts/coverage.sh                # build + run + enforce floor
#   scripts/coverage.sh --jobs 4       # cap build/test parallelism
#   scripts/coverage.sh --min 75       # override the floor (percent)
#
# Only stock gcov is used (no gcovr/lcov dependency): each .gcda produced by
# the test run is fed to `gcov -n`, whose "File/Lines executed" summary
# pairs are parsed and summed per source file.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MIN_PERCENT=80
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="$2"; shift ;;
    --jobs=*) JOBS="${1#--jobs=}" ;;
    --min) MIN_PERCENT="$2"; shift ;;
    --min=*) MIN_PERCENT="${1#--min=}" ;;
    *) echo "usage: scripts/coverage.sh [--jobs N] [--min PCT]" >&2; exit 2 ;;
  esac
  shift
done

BUILD=build-cov
# The test binaries whose runs exercise src/check/ + src/explore/.
TARGETS=(explore_test chaos_test sim_test harness_test sync_test
         consensus_test)

echo "==> coverage: configure + build ($BUILD/)"
cmake --preset coverage >/dev/null
cmake --build "$BUILD" -j "$JOBS" --target "${TARGETS[@]}"

echo "==> coverage: run instrumented tests"
find "$BUILD" -name '*.gcda' -delete
for t in "${TARGETS[@]}"; do
  "./$BUILD/tests/$t" --jobs="$JOBS" >/dev/null
done

echo "==> coverage: aggregate gcov for src/check/ + src/explore/ + src/sync/ + src/consensus/"
# gcov emits, per object: "File '<path>'" followed by
# "Lines executed:<pct>% of <total>". Sum totals and executed lines for the
# gated directories; a source seen from several objects (headers, inline
# code) is counted at its best-covered instantiation.
GCDA_LIST=$(find "$BUILD/src/check" "$BUILD/src/explore" "$BUILD/src/sync" \
                 "$BUILD/src/consensus" -name '*.gcda')
if [[ -z "$GCDA_LIST" ]]; then
  echo "coverage: no .gcda files under $BUILD/src/{check,explore,sync,consensus}" >&2
  exit 1
fi
REPORT=$(
  for gcda in $GCDA_LIST; do
    gcov -n "$gcda" 2>/dev/null
  done | awk -v root="$PWD" '
    /^File / {
      file = $0
      sub(/^File '\''/, "", file)
      sub(/'\''$/, "", file)
      sub("^" root "/", "", file)
      sub(/^\.\//, "", file)
      next
    }
    /^Lines executed:/ {
      if (file !~ /^src\/(check|explore|sync|consensus)\//) { file = ""; next }
      pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
      total = $0; sub(/.* of /, "", total)
      hit = int(pct * total / 100 + 0.5)
      if (total + 0 > 0 && (!(file in best_hit) || hit > best_hit[file])) {
        best_hit[file] = hit; best_total[file] = total
      }
      file = ""
    }
    END {
      sum_hit = 0; sum_total = 0
      for (f in best_hit) {
        printf "  %-40s %6.2f%% (%d/%d lines)\n", f,
               100.0 * best_hit[f] / best_total[f], best_hit[f], best_total[f]
        sum_hit += best_hit[f]; sum_total += best_total[f]
      }
      if (sum_total == 0) { print "TOTAL 0"; exit }
      printf "TOTAL %.2f\n", 100.0 * sum_hit / sum_total
    }' | sort
)
echo "$REPORT" | grep -v '^TOTAL'
TOTAL=$(echo "$REPORT" | awk '/^TOTAL/ {print $2}')

echo "==> coverage: ${TOTAL}% of src/check/ + src/explore/ + src/sync/ + src/consensus/ lines (floor ${MIN_PERCENT}%)"
awk -v t="$TOTAL" -v m="$MIN_PERCENT" 'BEGIN { exit (t + 0 >= m + 0) ? 0 : 1 }' || {
  echo "coverage: ${TOTAL}% is below the ${MIN_PERCENT}% floor" >&2
  exit 1
}
echo "OK"
