#!/usr/bin/env bash
# Full pre-merge check: tier-1 verify (ROADMAP.md) plus an ASan+UBSan build
# of the whole tree with the sanitize-labeled test suite.
#
#   scripts/check.sh            # tier-1 + sanitizers
#   scripts/check.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> tier-1: configure + build (build/)"
cmake --preset default >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  echo "OK (fast: sanitizer pass skipped)"
  exit 0
fi

echo "==> sanitize: ASan+UBSan configure + build (build-asan/)"
cmake --preset asan >/dev/null
cmake --build build-asan -j "$JOBS"

echo "==> sanitize: ctest (label: sanitize)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L sanitize

echo "==> chaos: seeded fault-injection sweeps under ASan (label: chaos)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L chaos

echo "OK"
