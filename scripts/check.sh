#!/usr/bin/env bash
# Full pre-merge check: tier-1 verify (ROADMAP.md), the open-loop overload
# smoke (fig_overload batching invariant + the ≤64 B/client memory guard at
# 1M logical clients), the tail-latency attribution smoke
# (tools/latency_report on the traced figure artifacts, including the
# malformed-input exit-code contract), an ASan+UBSan build of
# the whole tree with the sanitize-labeled test suite, the chaos sweeps, the
# schedule-space exploration sweeps (label: explore), the one-sided
# synchronization suite (label: sync) and the permission-guarded consensus
# suite (label: consensus) under both the ASan and TSan presets,
# a ThreadSanitizer pass over the threaded sweep-harness paths, and the gcov
# line-coverage floor on src/check/ + src/explore/ + src/sync/ +
# src/consensus/ (scripts/coverage.sh).
#
#   scripts/check.sh                 # tier-1 + sanitizers
#   scripts/check.sh --fast          # tier-1 only
#   scripts/check.sh --jobs 4        # cap build/ctest/sweep parallelism
#
# --jobs also propagates to the in-process sweep harness (bench drivers and
# chaos_test read PRISM_JOBS when no --jobs=N flag is given).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
JOBS="$(nproc 2>/dev/null || echo 2)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) FAST=1 ;;
    --jobs) JOBS="$2"; shift ;;
    --jobs=*) JOBS="${1#--jobs=}" ;;
    *) echo "usage: scripts/check.sh [--fast] [--jobs N]" >&2; exit 2 ;;
  esac
  shift
done
export PRISM_JOBS="$JOBS"

echo "==> tier-1: configure + build (build/)"
cmake --preset default >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> obs: traced figure smoke (--trace/--metrics must not perturb)"
(cd build && PRISM_BENCH_FAST=1 ./bench/fig2_topology --jobs=2 \
    --trace=results/trace_check.json --metrics >/dev/null)
test -s build/results/trace_check.json
test -s build/results/METRICS_fig2_topology.json

echo "==> obs: tail-latency attribution report (tools/latency_report)"
(cd build && ./tools/latency_report \
    --ts=results/TS_fig2_topology.json \
    --trace=results/trace_check.json \
    results/ATTRIB_fig2_topology.json >/dev/null)
# Malformed input (a Chrome trace where the ATTRIB schema is expected) must
# fail loudly, not print an empty report.
if (cd build && ./tools/latency_report results/trace_check.json \
    >/dev/null 2>&1); then
  echo "latency_report accepted a malformed ATTRIB input" >&2
  exit 1
fi

echo "==> overload: open-loop point + batching invariant (fig_overload)"
(cd build && PRISM_BENCH_FAST=1 ./bench/fig_overload --jobs="$JOBS" \
    >/dev/null)

echo "==> overload: per-client memory guard (≤64 B/client at 1M clients)"
(cd build && ./bench/fig_overload --guard=1000000)

if [[ "$FAST" == 1 ]]; then
  echo "OK (fast: sanitizer pass skipped)"
  exit 0
fi

echo "==> sanitize: ASan+UBSan configure + build (build-asan/)"
cmake --preset asan >/dev/null
cmake --build build-asan -j "$JOBS"

echo "==> sanitize: ctest (label: sanitize)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L sanitize

echo "==> chaos: seeded fault-injection sweeps under ASan (label: chaos)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L chaos

echo "==> explore: schedule-space exploration sweeps under ASan (label: explore)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L explore

echo "==> sync: one-sided synchronization suite under ASan (label: sync)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L sync

echo "==> consensus: permission-guarded consensus suite under ASan (label: consensus)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L consensus

echo "==> tsan: ThreadSanitizer configure + build (build-tsan/)"
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS"

echo "==> tsan: sweep harness + chaos sweeps under TSan"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'SweepHarness|ChaosSweep'

echo "==> tsan: one-sided synchronization suite under TSan (label: sync)"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L sync

echo "==> tsan: permission-guarded consensus suite under TSan (label: consensus)"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L consensus

echo "==> tsan: windowed parallel DES bit-identity suite under TSan (label: psim)"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L psim

echo "==> coverage: gcov line-coverage floor on src/check/ + src/explore/ + src/sync/ + src/consensus/"
scripts/coverage.sh --jobs "$JOBS"

echo "OK"
