# Explore reproducer smoke test: drive the real explore_main binary through
# the full artifact round trip on the sync positive control and pin its exit
# codes. Invoked by CTest as
#   cmake -DEXPLORE_BIN=<explore_main> -DWORK_DIR=<build dir>
#         -P explore_smoke.cmake
#
# 1. explore sync_buggy seed 3 at defaults  -> exit 1, writes a shrunk
#    reproducer (<= 5 perturbations, the positive-control bound)
# 2. --replay of the saved artifact          -> exit 0, "violation reproduced"
# 3. --replay of a tampered copy (perturb    -> exit 2, "did NOT reproduce"
#    lines stripped)
if(NOT EXPLORE_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "explore_smoke.cmake needs -DEXPLORE_BIN=... and -DWORK_DIR=...")
endif()

set(repro ${WORK_DIR}/repro_sync_smoke.txt)
file(REMOVE ${repro})

execute_process(
  COMMAND ${EXPLORE_BIN} --workload=sync_buggy --seed=3 --repro-out=${repro}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "explore of sync_buggy seed 3 expected exit 1 (violations found), got "
    "${rc}:\n${out}\n${err}")
endif()
if(NOT EXISTS ${repro})
  message(FATAL_ERROR "--repro-out did not write ${repro}:\n${out}")
endif()
if(NOT out MATCHES "shrunk to [1-5] perturbations")
  message(FATAL_ERROR
    "positive control did not shrink to <= 5 perturbations:\n${out}")
endif()

execute_process(
  COMMAND ${EXPLORE_BIN} --replay=${repro}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay of ${repro} expected exit 0, got ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "violation reproduced")
  message(FATAL_ERROR "replay did not report the violation:\n${out}")
endif()

# Tamper: strip the perturb directives. The artifact is 1-minimal, so the
# recorded violation cannot survive without them.
set(tampered ${WORK_DIR}/repro_sync_tampered.txt)
file(STRINGS ${repro} lines)
set(kept "")
foreach(line IN LISTS lines)
  if(NOT line MATCHES "^perturb ")
    string(APPEND kept "${line}\n")
  endif()
endforeach()
file(WRITE ${tampered} "${kept}")

execute_process(
  COMMAND ${EXPLORE_BIN} --replay=${tampered}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "tampered replay expected exit 2 (did not reproduce), got ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "did NOT reproduce")
  message(FATAL_ERROR "tampered replay did not report the miss:\n${out}")
endif()

message(STATUS
  "explore smoke OK: explore exit 1 with shrunk artifact, replay exit 0, "
  "tampered replay exit 2")
