// Quickstart: drive every PRISM primitive (Table 1) against a simulated
// server — indirect reads, bounded pointers, ALLOCATE, enhanced CAS, and a
// full conditional chain — and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/net/fabric.h"
#include "src/prism/service.h"
#include "src/sim/task.h"

using namespace prism;
using core::Chain;
using core::Op;
using sim::Task;

int main() {
  // One simulated server and one client on a 40 GbE cluster fabric.
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");

  // Server setup: an address space, the PRISM engine (software deployment),
  // one registered region, and a free list of 64-byte buffers for ALLOCATE.
  rdma::AddressSpace mem(1 << 20);
  core::PrismServer server(&fabric, server_host,
                           core::Deployment::kSoftware, &mem);
  rdma::MemoryRegion region = *mem.CarveAndRegister(64 * 1024,
                                                    rdma::kRemoteAll);
  uint32_t freelist = server.freelists().CreateQueue(64);
  for (int i = 0; i < 16; ++i) {
    server.PostBuffers(freelist, {region.base + 4096 +
                                  static_cast<uint64_t>(i) * 64});
  }
  core::PrismClient client(&fabric, client_host);
  rdma::Addr scratch = *server.AllocateScratch(16);  // on-NIC temp space

  sim::Spawn([&]() -> Task<void> {
    std::printf("== PRISM quickstart ==\n\n");

    // 1. Plain write + read.
    Bytes greeting = BytesOfString("hello, prism");
    Op write = Op::Write(region.rkey, region.base + 256, greeting);
    auto w = co_await client.ExecuteOne(&server, std::move(write));
    std::printf("WRITE:          %s\n", w->status.ToString().c_str());

    // 2. Indirection (§3.1): store a pointer, then follow it in one op.
    mem.StoreWord(region.base, region.base + 256);  // *base = &greeting
    Op ind = Op::IndirectRead(region.rkey, region.base, greeting.size());
    auto r = co_await client.ExecuteOne(&server, std::move(ind));
    std::printf("INDIRECT READ:  \"%s\" (resolved pointer 0x%llx)\n",
                StringOfBytes(r->data).c_str(),
                static_cast<unsigned long long>(r->resolved_addr));

    // 3. Bounded pointers for variable-length values.
    core::BoundedPtr bp{region.base + 256, 5};
    mem.Store(region.base + 16, bp.ToBytes());
    Op bounded = Op::IndirectRead(region.rkey, region.base + 16,
                                  /*len=*/512, /*bounded=*/true);
    auto br = co_await client.ExecuteOne(&server, std::move(bounded));
    std::printf("BOUNDED READ:   \"%s\" (asked 512 B, bound clamped to 5)\n",
                StringOfBytes(br->data).c_str());

    // 4. ALLOCATE (§3.2): pop a buffer, fill it, get its address back.
    Op alloc = Op::Allocate(region.rkey, freelist, BytesOfString("fresh!"));
    auto a = co_await client.ExecuteOne(&server, std::move(alloc));
    std::printf("ALLOCATE:       buffer at 0x%llx\n",
                static_cast<unsigned long long>(a->AllocatedAddr()));

    // 5. Enhanced CAS (§3.3): versioned update with CAS_GT on one field.
    mem.Store(region.base + 32, BytesOfU64Pair(/*value=*/7, /*version=*/3));
    Op cas = Op::MaskedCas(region.rkey, region.base + 32,
                           BytesOfU64Pair(/*value=*/99, /*version=*/5),
                           /*cmp_mask=*/FieldMask(16, 8, 8),   // version only
                           /*swap_mask=*/FieldMask(16, 0, 16),  // both fields
                           rdma::CasCompare::kGreater);
    auto c = co_await client.ExecuteOne(&server, std::move(cas));
    std::printf("ENHANCED CAS:   version 5 > 3 ? %s -> value now %llu\n",
                c->cas_swapped ? "swapped" : "kept",
                static_cast<unsigned long long>(
                    mem.LoadWord(region.base + 32)));

    // 6. A full §3.5 chain in ONE round trip: allocate a new value, redirect
    // its address to on-NIC scratch, then conditionally install the pointer.
    Chain chain;
    chain.push_back(Op::Allocate(region.rkey, freelist,
                                 BytesOfString("installed-via-chain"))
                        .RedirectTo(scratch));
    Op install;
    install.code = core::OpCode::kCas;
    install.rkey = region.rkey;
    install.addr = region.base + 48;       // the pointer slot
    install.data = BytesOfU64(scratch);    // swap operand = *scratch
    install.data_indirect = true;
    install.cmp_mask = Bytes(8, 0x00);     // unconditional swap
    install.swap_mask = Bytes(8, 0xff);
    install.conditional = true;            // only if ALLOCATE succeeded
    chain.push_back(std::move(install));
    auto res = co_await client.Execute(&server, std::move(chain));
    rdma::Addr installed = mem.LoadWord(region.base + 48);
    std::printf("CHAIN:          allocate+redirect+CAS in 1 RT -> \"%s\"\n",
                StringOfBytes(mem.Load(installed, 19)).c_str());

    std::printf("\nsimulated time elapsed: %.1f us (every op one round "
                "trip, no server CPU on the data path)\n",
                sim::ToMicros(sim.Now()));
  });
  sim.Run();
  return 0;
}
