// Example: PRISM-TX (§8) — serializable bank transfers with a one-sided OCC
// commit protocol: two round trips, no server CPU.
#include <cstdio>

#include "src/common/rng.h"
#include "src/sim/task.h"
#include "src/tx/prism_tx.h"

using namespace prism;
using sim::Task;

namespace {

Bytes Balance(uint64_t amount) {
  Bytes b(64, 0);
  StoreU64(b.data(), amount);
  return b;
}
uint64_t AsAmount(const Bytes& b) { return LoadU64(b.data()); }

}  // namespace

int main() {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());

  tx::PrismTxOptions opts;
  opts.keys_per_shard = 256;
  opts.value_size = 64;
  opts.buffers_per_shard = 2048;
  tx::PrismTxCluster cluster(&fabric, /*n_shards=*/2, opts);

  constexpr int kAccounts = 10;
  constexpr uint64_t kOpening = 100;
  for (uint64_t account = 0; account < kAccounts; ++account) {
    PRISM_CHECK(cluster.LoadKey(account, Balance(kOpening)).ok());
  }

  std::printf("== PRISM-TX example: bank transfers over 2 shards ==\n\n");
  std::printf("%d accounts with %llu each (total %llu)\n\n", kAccounts,
              static_cast<unsigned long long>(kOpening),
              static_cast<unsigned long long>(kAccounts * kOpening));

  // Four tellers transfer money concurrently; conflicts abort and retry.
  std::vector<std::unique_ptr<tx::PrismTxClient>> tellers;
  for (uint16_t t = 1; t <= 4; ++t) {
    net::HostId host = fabric.AddHost("teller-" + std::to_string(t));
    tellers.push_back(std::make_unique<tx::PrismTxClient>(&fabric, host,
                                                          &cluster, t));
  }
  int transfers = 0, retries = 0;
  for (int t = 0; t < 4; ++t) {
    sim::Spawn([&, t]() -> Task<void> {
      Rng rng(static_cast<uint64_t>(t) + 1);
      tx::PrismTxClient* teller = tellers[static_cast<size_t>(t)].get();
      for (int i = 0; i < 25; ++i) {
        const uint64_t from = rng.NextBelow(kAccounts);
        const uint64_t to = (from + 1 + rng.NextBelow(kAccounts - 1)) %
                            kAccounts;
        const uint64_t amount = 1 + rng.NextBelow(10);
        // Retry loop: OCC aborts are normal under contention.
        for (int attempt = 0; attempt < 20; ++attempt) {
          tx::Transaction txn = teller->Begin();
          auto from_balance = co_await teller->Read(txn, from);
          auto to_balance = co_await teller->Read(txn, to);
          if (!from_balance.ok() || !to_balance.ok()) break;
          if (AsAmount(*from_balance) < amount) break;  // insufficient funds
          teller->Write(txn, from, Balance(AsAmount(*from_balance) - amount));
          teller->Write(txn, to, Balance(AsAmount(*to_balance) + amount));
          Status s = co_await teller->Commit(txn);
          if (s.ok()) {
            transfers++;
            break;
          }
          retries++;  // validation conflict: somebody touched an account
        }
      }
    });
  }
  sim.Run();

  // Audit with a read-only transaction.
  sim::Spawn([&]() -> Task<void> {
    uint64_t total = 0;
    tx::Transaction audit = tellers[0]->Begin();
    for (uint64_t account = 0; account < kAccounts; ++account) {
      auto balance = co_await tellers[0]->Read(audit, account);
      total += AsAmount(*balance);
      std::printf("account %llu: %4llu\n",
                  static_cast<unsigned long long>(account),
                  static_cast<unsigned long long>(AsAmount(*balance)));
    }
    (void)co_await tellers[0]->Commit(audit);
    std::printf("\n%d transfers committed, %d OCC retries\n", transfers,
                retries);
    std::printf("total = %llu (invariant %s)\n",
                static_cast<unsigned long long>(total),
                total == kAccounts * kOpening ? "HOLDS" : "VIOLATED!");
  });
  sim.Run();
  return 0;
}
