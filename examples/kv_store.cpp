// Example: PRISM-KV session (§6) — a key-value store whose GETs and PUTs
// both run entirely as one-sided PRISM operations.
//
// Demonstrates loads, reads, overwrites, deletes, concurrent writers racing
// on a hot key (CAS retries), and buffer reclamation.
#include <cstdio>
#include <string>

#include "src/kv/prism_kv.h"
#include "src/sim/task.h"

using namespace prism;
using sim::Task;

int main() {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("kv-server");

  kv::PrismKvOptions opts;
  opts.n_buckets = 1024;
  opts.n_buffers = 2048;
  kv::PrismKvServer server(&fabric, server_host, opts);

  net::HostId alice_host = fabric.AddHost("alice");
  net::HostId bob_host = fabric.AddHost("bob");
  kv::PrismKvClient alice(&fabric, alice_host, &server);
  kv::PrismKvClient bob(&fabric, bob_host, &server);

  std::printf("== PRISM-KV example ==\n\n");

  // Basic session.
  sim::Spawn([&]() -> Task<void> {
    (void)co_await alice.Put("user:1", BytesOfString("alice@example.com"));
    (void)co_await alice.Put("user:2", BytesOfString("bob@example.com"));
    auto v = co_await alice.Get("user:1");
    std::printf("GET user:1     -> \"%s\"   (one indirect READ, ~6 us)\n",
                StringOfBytes(*v).c_str());

    (void)co_await alice.Put("user:1", BytesOfString("alice@new.example"));
    v = co_await alice.Get("user:1");
    std::printf("after PUT      -> \"%s\"   (out-of-place update, no CRCs)\n",
                StringOfBytes(*v).c_str());

    (void)co_await alice.Delete("user:2");
    auto missing = co_await alice.Get("user:2");
    std::printf("after DELETE   -> %s\n", missing.status().ToString().c_str());
  });
  sim.Run();

  // Two writers race on one key: PRISM-KV's conditional CAS ensures
  // last-writer-wins with no torn values, and losers retry.
  int done = 0;
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await alice.Put("hot", BytesOfString("alice-" +
                                                    std::to_string(i)));
    }
    done++;
  });
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await bob.Put("hot", BytesOfString("bob-" +
                                                  std::to_string(i)));
    }
    done++;
  });
  sim.Run();
  sim::Spawn([&]() -> Task<void> {
    auto v = co_await alice.Get("hot");
    std::printf("\ncontended key  -> \"%s\" after 20 racing PUTs "
                "(%llu CAS retries across both writers)\n",
                StringOfBytes(*v).c_str(),
                static_cast<unsigned long long>(alice.cas_failures() +
                                                bob.cas_failures()));
    alice.FlushReclaim();
    bob.FlushReclaim();
  });
  sim.Run();
  std::printf("free buffers   -> %zu of %llu (displaced versions recycled "
              "through the reclamation daemon)\n",
              server.free_buffers(),
              static_cast<unsigned long long>(opts.n_buffers - 1));
  return 0;
}
