// Example: PRISM-RS (§7) — a linearizable replicated block store built on
// multi-writer ABD with PRISM chains, surviving replica failure with zero
// replica-CPU involvement.
#include <cstdio>

#include "src/rs/prism_rs.h"
#include "src/sim/task.h"

using namespace prism;
using sim::Task;

int main() {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());

  rs::PrismRsOptions opts;
  opts.n_blocks = 128;
  opts.block_size = 64;
  opts.buffers_per_replica = 1024;
  rs::PrismRsCluster cluster(&fabric, /*n_replicas=*/3, opts);  // f = 1

  net::HostId writer_host = fabric.AddHost("writer");
  net::HostId reader_host = fabric.AddHost("reader");
  rs::PrismRsClient writer(&fabric, writer_host, &cluster, /*client_id=*/1);
  rs::PrismRsClient reader(&fabric, reader_host, &cluster, /*client_id=*/2);

  auto Block = [](const char* text) {
    Bytes b(64, 0);
    for (size_t i = 0; text[i] != '\0' && i < b.size(); ++i) {
      b[i] = static_cast<uint8_t>(text[i]);
    }
    return b;
  };
  auto Show = [](const Bytes& b) {
    std::string s;
    for (uint8_t c : b) {
      if (c == 0) break;
      s.push_back(static_cast<char>(c));
    }
    return s;
  };

  std::printf("== PRISM-RS example: 3 replicas, tolerates 1 failure ==\n\n");
  sim::Spawn([&]() -> Task<void> {
    rs::Tag tag;
    (void)co_await writer.Put(0, Block("v1: genesis block"), &tag);
    std::printf("PUT block 0 -> tag (ts=%llu, client=%u)\n",
                static_cast<unsigned long long>(tag.ts), tag.client);

    auto v = co_await reader.Get(0, &tag);
    std::printf("GET block 0 -> \"%s\" at tag ts=%llu\n",
                Show(*v).c_str(), static_cast<unsigned long long>(tag.ts));

    // Kill one replica: ABD still makes quorum (f+1 = 2 of 3).
    std::printf("\n-- killing replica 1 --\n");
    fabric.SetHostUp(1, false);

    (void)co_await writer.Put(0, Block("v2: written with a replica down"),
                              &tag);
    std::printf("PUT with 2/3 replicas -> OK (ts=%llu)\n",
                static_cast<unsigned long long>(tag.ts));
    v = co_await reader.Get(0);
    std::printf("GET with 2/3 replicas -> \"%s\"\n", Show(*v).c_str());

    // Bring it back; the next write-back phase repairs it lazily.
    std::printf("\n-- replica 1 recovers --\n");
    fabric.SetHostUp(1, true);
    v = co_await reader.Get(0);
    std::printf("GET after recovery    -> \"%s\" (write-back propagated "
                "the latest tag to a quorum)\n",
                Show(*v).c_str());

    // Two more failures would block progress — ABD's availability bound.
    fabric.SetHostUp(0, false);
    fabric.SetHostUp(2, false);
    auto blocked = co_await reader.Get(0);
    std::printf("\nGET with 1/3 replicas -> %s (quorum unreachable, "
                "as ABD requires)\n",
                blocked.status().ToString().c_str());
  });
  sim.Run();
  return 0;
}
