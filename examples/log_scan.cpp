// Example: scanning a remote append-only log with the pattern-search
// primitive (the Snap-inspired extension, §9) — find a record marker in a
// multi-kilobyte remote log with one round trip and an 8-byte response,
// then fetch just the matching record with a chained conditional READ.
#include <cstdio>
#include <cstring>

#include "src/net/fabric.h"
#include "src/prism/service.h"
#include "src/sim/task.h"

using namespace prism;
using core::Chain;
using core::Op;
using sim::Task;

int main() {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("log-server");
  net::HostId client_host = fabric.AddHost("client");

  rdma::AddressSpace mem(1 << 20);
  core::PrismServer server(&fabric, server_host,
                           core::Deployment::kSoftware, &mem);
  auto region = *mem.CarveAndRegister(128 * 1024, rdma::kRemoteAll);

  // Build a 32 KiB remote log of fixed-size records; one carries the event
  // we are hunting for.
  constexpr uint64_t kRecordSize = 64;
  constexpr uint64_t kRecords = 512;
  for (uint64_t i = 0; i < kRecords; ++i) {
    char record[kRecordSize] = {};
    std::snprintf(record, sizeof(record), "rec%05llu level=INFO  msg=ok",
                  static_cast<unsigned long long>(i));
    if (i == 387) {
      std::snprintf(record, sizeof(record),
                    "rec%05llu level=FATAL msg=disk on fire",
                    static_cast<unsigned long long>(i));
    }
    mem.Store(region.base + i * kRecordSize,
              Bytes(record, record + kRecordSize));
  }

  core::PrismClient client(&fabric, client_host);
  std::printf("== remote log scan with the pattern-search primitive ==\n\n");
  std::printf("log: %llu records x %llu B = %llu KiB on the server\n\n",
              static_cast<unsigned long long>(kRecords),
              static_cast<unsigned long long>(kRecordSize),
              static_cast<unsigned long long>(kRecords * kRecordSize / 1024));

  sim::Spawn([&]() -> Task<void> {
    // Naive approach for comparison: read the whole log.
    uint64_t bytes_before = fabric.total_wire_bytes();
    sim::TimePoint t0 = sim.Now();
    auto whole = co_await client.ExecuteOne(
        &server, Op::Read(region.rkey, region.base, kRecords * kRecordSize));
    PRISM_CHECK(whole.ok());
    double read_us = sim::ToMicros(sim.Now() - t0);
    uint64_t read_bytes = fabric.total_wire_bytes() - bytes_before;

    // PRISM approach: SEARCH for the marker, then a conditional READ of just
    // the matching record — one round trip total.
    bytes_before = fabric.total_wire_bytes();
    t0 = sim.Now();
    Chain chain;
    chain.push_back(Op::Search(region.rkey, region.base,
                               kRecords * kRecordSize,
                               BytesOfString("level=FATAL")));
    auto results = co_await client.Execute(&server, std::move(chain));
    PRISM_CHECK(results.ok());
    const uint64_t offset = LoadU64((*results)[0].data.data());
    PRISM_CHECK(offset != core::kSearchNotFound);
    const uint64_t record_base =
        region.base + (offset / kRecordSize) * kRecordSize;
    auto record = co_await client.ExecuteOne(
        &server, Op::Read(region.rkey, record_base, kRecordSize));
    PRISM_CHECK(record.ok());
    double search_us = sim::ToMicros(sim.Now() - t0);
    uint64_t search_bytes = fabric.total_wire_bytes() - bytes_before;

    std::printf("full READ:       %8.1f us, %6llu wire bytes\n", read_us,
                static_cast<unsigned long long>(read_bytes));
    std::printf("SEARCH + READ:   %8.1f us, %6llu wire bytes\n", search_us,
                static_cast<unsigned long long>(search_bytes));
    std::printf("\nmatch at offset %llu:\n  \"%s\"\n",
                static_cast<unsigned long long>(offset),
                StringOfBytes(record->data).c_str());
  });
  sim.Run();
  return 0;
}
