// Synchronization-scheme spectrum figure (no paper counterpart; ISSUE 7):
// throughput / latency / round trips per op for the four correct one-sided
// synchronization schemes over the remote hash index (src/sync), under
// open-loop load with zipf-skewed contention.
//
// Methodology: one index server host; per client host (11, the paper's
// testbed) an OpenLoopPool drives a 50/50 read/update mix through one
// reader and one updater SyncClient (distinct lock-owner ids). Keys are
// drawn zipf(0.99) over a deliberately small key set so the hot key sees
// real lock contention — conflict retries are part of every scheme's
// round-trip bill, which is the point of the figure. Latency is measured
// from arrival to completion (client-side queueing included).
//
// Acceptance (PRISM_CHECKed at the top offered rate, enforced by
// bench_smoke): the PRISM-native chain scheme — lock, op, and unlock fused
// into one conditional chain — must beat CAS-spinlock on round trips per
// op for both op classes. The unfenced buggy scheme is deliberately absent
// here: it exists as the explore/check positive control, not a contender.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/common/histogram.h"
#include "src/harness/sweep.h"
#include "src/sync/sync.h"
#include "src/workload/arrival.h"
#include "src/workload/open_loop.h"
#include "src/workload/zipf.h"

namespace prism::bench {
namespace {

constexpr double kUpdateFrac = 0.5;
constexpr uint64_t kSyncKeys = 16;  // small on purpose: contention figure
constexpr double kZipfTheta = 0.99;

struct SyncConfig {
  sync::SyncScheme scheme = sync::SyncScheme::kSpinlock;
  const char* name = "";
  double offered_mops = 0.02;
  uint64_t n_clients = 0;
  BenchWindows windows;
  uint64_t seed = 1;
  // Lock-holding ops queue behind the hot key, so per-host op concurrency
  // stays modest — enough to expose contention, not enough to exhaust
  // max_attempts on every draw.
  int workers_per_host = 16;
};

uint64_t DefaultClients() { return FastMode() ? 10'000 : 100'000; }

std::vector<double> OfferedSweepMops() {
  // Fast mode keeps the full sweep's endpoints: the top point must reach
  // real lock convoys so the attribution acceptance check (spinlock tail
  // sync_spin-dominated, PRISM-native tail wire-dominated) sees the same
  // regime CI asserts on.
  if (FastMode()) return {0.02, 0.2};
  return {0.02, 0.05, 0.1, 0.2};
}

workload::LoadPoint RunSyncPoint(const SyncConfig& cfg,
                                 obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  sync::SyncOptions sopts;
  sopts.n_slots = 64;
  sync::SyncIndexServer server(&fabric, fabric.AddHost("sync-server"), sopts);
  for (uint64_t k = 1; k <= kSyncKeys; ++k) {
    PRISM_CHECK(server.LoadKey(k, sync::InitialValue()).ok()) << "key " << k;
  }
  auto client_hosts = AddClientHosts(fabric);
  const size_t n_hosts = client_hosts.size();
  struct HostRig {
    std::unique_ptr<sync::SyncClient> reader;
    std::unique_ptr<sync::SyncClient> updater;
    std::unique_ptr<workload::OpenLoopPool> pool;
  };
  std::vector<HostRig> rigs(n_hosts);
  const sim::TimePoint measure_start = sim.Now() + cfg.windows.warmup;
  const sim::TimePoint end = measure_start + cfg.windows.measure;
  Rng master(cfg.seed);
  const workload::KeyChooser chooser(kSyncKeys, kZipfTheta);
  const double rate_per_host =
      cfg.offered_mops * 1e6 / static_cast<double>(n_hosts);
  uint64_t remaining = cfg.n_clients;
  for (size_t h = 0; h < n_hosts; ++h) {
    HostRig& rig = rigs[h];
    // Distinct nonzero lock-owner ids per (host, role): pool workers share
    // a client's id, which is safe (an unexpired own-id lock/lease reads as
    // a conflict, never as re-entry).
    const uint16_t reader_id = static_cast<uint16_t>(2 * h + 1);
    const uint16_t updater_id = static_cast<uint16_t>(2 * h + 2);
    rig.reader = std::make_unique<sync::SyncClient>(
        &fabric, client_hosts[h], &server, cfg.scheme, reader_id,
        cfg.seed * 131 + reader_id);
    rig.updater = std::make_unique<sync::SyncClient>(
        &fabric, client_hosts[h], &server, cfg.scheme, updater_id,
        cfg.seed * 131 + updater_id);
    for (uint64_t k = 1; k <= kSyncKeys; ++k) {
      rig.reader->Prewarm(k);
      rig.updater->Prewarm(k);
    }
    const uint64_t n_here = remaining / (n_hosts - h);
    remaining -= n_here;
    workload::PoolOptions popts;
    popts.workers = cfg.workers_per_host;
    rig.pool = std::make_unique<workload::OpenLoopPool>(
        &sim, workload::ArrivalSpec::Poisson(rate_per_host), n_here,
        master.Fork(), popts);
    if (pobs != nullptr && pobs->timelines != nullptr) {
      rig.pool->set_timelines(pobs->timelines, &fabric.obs(), client_hosts[h]);
    }
    sync::SyncClient* rd = rig.reader.get();
    sync::SyncClient* up = rig.updater.get();
    net::Fabric* fb = &fabric;
    // kAborted means max_attempts lost races — real behavior under a hot
    // lock, not corruption. Retry with a fresh attempt budget so the convoy
    // cost lands in the latency tail instead of aborting the sample. The
    // retry pause is acquisition spin for attribution; the register is
    // re-armed after every suspension so the next call attributes here.
    rig.pool->AddClass(
        "sync.read", 1.0 - kUpdateFrac,
        [rd, chooser, cfg, &sim, fb](uint64_t draw,
                                     obs::OpTimeline* op) -> sim::Task<void> {
          Rng r(draw);
          const uint64_t key = 1 + chooser.Next(r);
          for (int attempt = 0;; ++attempt) {
            auto v = co_await rd->Read(key);
            if (v.ok()) break;
            PRISM_CHECK(attempt < 100 && v.status().code() == Code::kAborted)
                << v.status() << " scheme=" << cfg.name << " key=" << key
                << " offered=" << cfg.offered_mops;
            obs::SwitchOp(op, obs::Phase::kSyncSpin, sim.Now());
            co_await sim::SleepFor(&sim, sim::Micros(20));
            obs::SwitchOp(op, obs::Phase::kApp, sim.Now());
            if (op != nullptr) fb->obs().SetCurrentOp(op);
          }
        });
    rig.pool->AddClass(
        "sync.update", kUpdateFrac,
        [up, chooser, cfg, &sim, fb](uint64_t draw,
                                     obs::OpTimeline* op) -> sim::Task<void> {
          Rng r(draw);
          const uint64_t key = 1 + chooser.Next(r);
          for (int attempt = 0;; ++attempt) {
            Status s =
                co_await up->Update(key, Bytes(sync::kValueSize, 0x5A));
            if (s.ok()) break;
            PRISM_CHECK(attempt < 100 && s.code() == Code::kAborted)
                << s << " scheme=" << cfg.name << " key=" << key
                << " offered=" << cfg.offered_mops;
            obs::SwitchOp(op, obs::Phase::kSyncSpin, sim.Now());
            co_await sim::SleepFor(&sim, sim::Micros(20));
            obs::SwitchOp(op, obs::Phase::kApp, sim.Now());
            if (op != nullptr) fb->obs().SetCurrentOp(op);
          }
        });
    rig.pool->Start(measure_start, end);
  }
  sim.RunUntil(end + sim::Millis(20));  // drain the backlog tail
  sim.Run();

  LatencyHistogram all;
  uint64_t measured_arrivals = 0;
  uint64_t total_clients = 0;
  for (size_t c = 0; c < 2; ++c) {
    LatencyHistogram cls_hist;
    obs::TransportTally tally;
    uint64_t n_ops = 0;
    for (HostRig& rig : rigs) {
      cls_hist.Merge(rig.pool->recorder(c).hist());
      n_ops += rig.pool->class_completions(c);
      sync::SyncClient* cl = c == 0 ? rig.reader.get() : rig.updater.get();
      tally += cl->tally();
    }
    fabric.obs().ops().RecordN(rigs[0].pool->class_name(c), n_ops, tally);
    all.Merge(cls_hist);
  }
  for (HostRig& rig : rigs) {
    rig.pool->CheckDrained();
    measured_arrivals += rig.pool->measured_arrivals();
    total_clients += rig.pool->n_clients();
  }

  const double seconds = sim::ToSeconds(end - measure_start);
  workload::LoadPoint p;
  p.clients = static_cast<int>(total_clients);
  const auto s = all.Summarize();
  p.tput_mops = static_cast<double>(s.count) / seconds / 1e6;
  p.offered_mops = static_cast<double>(measured_arrivals) / seconds / 1e6;
  p.mean_us = s.mean_us;
  p.p50_us = s.p50_us;
  p.p99_us = s.p99_us;
  p.p999_us = s.p999_us;
  p.sim_events = sim.executed_events();
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

double RtPerOp(const workload::LoadPoint& p, const std::string& op) {
  for (const obs::OpStats& os : p.ops) {
    if (os.op == op && os.count > 0) {
      return static_cast<double>(os.totals.round_trips) /
             static_cast<double>(os.count);
    }
  }
  PRISM_CHECK(false) << "no complexity row for " << op;
  return 0;
}

int Main(int argc, char** argv) {
  using workload::PrintHeader;
  using workload::PrintRow;
  const int jobs = harness::JobsFromArgs(argc, argv);
  const ObsOptions obs_opts = ObsFromArgs(argc, argv);
  const BenchWindows windows = BenchWindows::Default();
  const uint64_t n_clients = DefaultClients();
  const std::vector<double> sweep = OfferedSweepMops();

  struct Series {
    sync::SyncScheme scheme;
    const char* name;
  };
  const std::vector<Series> series = {
      {sync::SyncScheme::kSpinlock, "CAS-spinlock"},
      {sync::SyncScheme::kOptimistic, "Optimistic (seqlock)"},
      {sync::SyncScheme::kLease, "Lease (fenced)"},
      {sync::SyncScheme::kPrismNative, "PRISM-native chain"},
  };
  ObsRig rig(obs_opts, series.size() * sweep.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (size_t si = 0; si < series.size(); ++si) {
    for (size_t li = 0; li < sweep.size(); ++li) {
      SyncConfig cfg;
      cfg.scheme = series[si].scheme;
      cfg.name = series[si].name;
      cfg.offered_mops = sweep[li];
      cfg.n_clients = n_clients;
      cfg.windows = windows;
      cfg.seed = 1000 * (si + 1) + li;
      obs::PointObs* po = rig.at(slot++);
      cells.push_back({series[si].name,
                       [cfg, po] { return RunSyncPoint(cfg, po); },
                       sweep[li]});
    }
  }
  const std::string title =
      "Sync schemes over a remote hash index: open-loop zipf(0.99) "
      "contention, 50% updates";
  FigureReporter reporter("fig_sync", title);
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  PrintHeader(title, "offered(Mops)  rt/read  rt/update");
  for (size_t i = 0; i < cells.size(); ++i) {
    char extra[64];
    std::snprintf(extra, sizeof(extra), "%10.3f  %7.2f  %9.2f",
                  rows[i].offered_mops, RtPerOp(rows[i], "sync.read"),
                  RtPerOp(rows[i], "sync.update"));
    PrintRow(cells[i].series, rows[i], extra);
  }
  reporter.WriteUnified();
  rig.Finish("fig_sync", cells);

  // Acceptance at the top offered rate: fusing lock+op+unlock into one
  // conditional chain must beat the spinlock's CAS/op/unlock round trips
  // for both op classes (conflict retries included on both sides).
  const size_t top = sweep.size() - 1;
  const workload::LoadPoint& spin = rows[0 * sweep.size() + top];
  const workload::LoadPoint& prism = rows[3 * sweep.size() + top];
  for (const char* op : {"sync.read", "sync.update"}) {
    const double rt_spin = RtPerOp(spin, op);
    const double rt_prism = RtPerOp(prism, op);
    PRISM_CHECK_LT(rt_prism, rt_spin)
        << op << ": PRISM-native chains should save round trips";
    std::printf("sync-assert %-12s rt/op spinlock %.3f prism %.3f\n", op,
                rt_spin, rt_prism);
  }
  return 0;
}

}  // namespace
}  // namespace prism::bench

int main(int argc, char** argv) { return prism::bench::Main(argc, argv); }
