// Shared rig for the Figure 3 / Figure 4 key-value benchmarks.
#ifndef PRISM_BENCH_KV_BENCH_LIB_H_
#define PRISM_BENCH_KV_BENCH_LIB_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/kv/pilaf.h"
#include "src/kv/prism_kv.h"

namespace prism::bench {

// Scaled-down store (DESIGN.md §1): the paper uses 8 M × 512 B objects; the
// protocol path is size-invariant in simulation, so we use 64 K keys
// (8 K in fast mode) with identical value size and access distribution.
inline uint64_t BenchKeyCount() { return FastMode() ? 8192 : 65536; }
constexpr uint64_t kBenchValueSize = 512;

struct KvWorkloadResult {
  workload::LoadPoint point;
};

// Runs a YCSB-style closed-loop sweep against PRISM-KV. `pobs`, when given,
// attaches this point's tracer / collects its metrics snapshot.
inline workload::LoadPoint RunPrismKvPoint(int n_clients, double read_frac,
                                           const BenchWindows& windows,
                                           uint64_t seed,
                                           obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  net::HostId server_host = fabric.AddHost("kv-server");
  kv::PrismKvOptions opts;
  const uint64_t keys = BenchKeyCount();
  opts.n_buckets = keys;
  opts.n_buffers = keys + 4096;
  opts.dense_key_hash = true;
  kv::PrismKvServer server(&fabric, server_host, opts);
  for (uint64_t k = 0; k < keys; ++k) {
    PRISM_CHECK(server
                    .LoadKey(BytesOfString(KeyOf(k)),
                             Bytes(kBenchValueSize, 0x11))
                    .ok());
  }
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<kv::PrismKvClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<kv::PrismKvClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &server));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    kv::PrismKvClient* client = clients[static_cast<size_t>(c)].get();
    const net::HostId host =
        client_hosts[static_cast<size_t>(c) % client_hosts.size()];
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t key = rng->NextBelow(keys);
      const bool is_get = rng->NextDouble() < read_frac;
      const sim::TimePoint op_start = sim.Now();
      const obs::TransportTally before = client->TransportTally();
      const obs::SpanId span = fabric.obs().StartSpan(
          is_get ? "kv.get" : "kv.put", "app", host, sim.Now());
      if (is_get) {
        auto r = co_await client->Get(KeyOf(key));
        PRISM_CHECK(r.ok()) << r.status();
      } else {
        Status s = co_await client->Put(KeyOf(key),
                                        Bytes(kBenchValueSize, 0x22));
        PRISM_CHECK(s.ok()) << s;
      }
      fabric.obs().FinishSpan(span, sim.Now());
      fabric.obs().ops().Record(is_get ? "kv.get" : "kv.put",
                                client->TransportTally() - before);
      recorder->Record(op_start);
    }
    client->FlushReclaim();
  };
  workload::LoadPoint p = RunClosedLoop(sim, n_clients, windows, loop);
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

// Runs the same sweep against Pilaf with the given RDMA backend.
inline workload::LoadPoint RunPilafPoint(int n_clients, double read_frac,
                                         rdma::Backend backend,
                                         const BenchWindows& windows,
                                         uint64_t seed,
                                         obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  net::HostId server_host = fabric.AddHost("pilaf-server");
  kv::PilafOptions opts;
  const uint64_t keys = BenchKeyCount();
  opts.n_buckets = keys;
  opts.n_extents = keys + 4096;
  opts.backend = backend;
  opts.dense_key_hash = true;
  kv::PilafServer server(&fabric, server_host, opts);
  for (uint64_t k = 0; k < keys; ++k) {
    PRISM_CHECK(server
                    .LoadKey(BytesOfString(KeyOf(k)),
                             Bytes(kBenchValueSize, 0x11))
                    .ok());
  }
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<kv::PilafClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<kv::PilafClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &server));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    kv::PilafClient* client = clients[static_cast<size_t>(c)].get();
    const net::HostId host =
        client_hosts[static_cast<size_t>(c) % client_hosts.size()];
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t key = rng->NextBelow(keys);
      const bool is_get = rng->NextDouble() < read_frac;
      const sim::TimePoint op_start = sim.Now();
      const obs::TransportTally before = client->TransportTally();
      const obs::SpanId span = fabric.obs().StartSpan(
          is_get ? "kv.get" : "kv.put", "app", host, sim.Now());
      if (is_get) {
        auto r = co_await client->Get(KeyOf(key));
        PRISM_CHECK(r.ok()) << r.status();
      } else {
        Status s = co_await client->Put(KeyOf(key),
                                        Bytes(kBenchValueSize, 0x22));
        PRISM_CHECK(s.ok()) << s;
      }
      fabric.obs().FinishSpan(span, sim.Now());
      fabric.obs().ops().Record(is_get ? "kv.get" : "kv.put",
                                client->TransportTally() - before);
      recorder->Record(op_start);
    }
  };
  workload::LoadPoint p = RunClosedLoop(sim, n_clients, windows, loop);
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

// Fans the full three-series client sweep through the parallel sweep
// runner; each cell is a self-contained simulation (own Simulator, Fabric,
// RNGs), so any --jobs count yields bit-identical rows and stdout.
inline void RunKvFigure(const char* bench_name, const char* title,
                        double read_frac, int jobs,
                        const ObsOptions& obs_opts = {}) {
  using workload::PrintHeader;
  using workload::PrintRow;
  BenchWindows windows = BenchWindows::Default();
  const std::vector<int> sweep = DefaultClientSweep();
  ObsRig rig(obs_opts, 3 * sweep.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"Pilaf", [=] {
                       return RunPilafPoint(n, read_frac,
                                            rdma::Backend::kHardwareNic,
                                            windows,
                                            1000 + static_cast<uint64_t>(n),
                                            po);
                     }});
  }
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"Pilaf (software RDMA)", [=] {
                       return RunPilafPoint(n, read_frac,
                                            rdma::Backend::kSoftwareStack,
                                            windows,
                                            2000 + static_cast<uint64_t>(n),
                                            po);
                     }});
  }
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"PRISM-KV", [=] {
                       return RunPrismKvPoint(
                           n, read_frac, windows,
                           3000 + static_cast<uint64_t>(n), po);
                     }});
  }
  FigureReporter reporter(bench_name, title);
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  PrintHeader(title);
  for (size_t i = 0; i < cells.size(); ++i) {
    PrintRow(cells[i].series, rows[i]);
  }
  reporter.WriteUnified();
  rig.Finish(bench_name, cells);
}

}  // namespace prism::bench

#endif  // PRISM_BENCH_KV_BENCH_LIB_H_
