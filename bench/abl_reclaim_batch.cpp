// Ablation A5: reclamation batching (§3.2).
//
// Freed buffers return to the server via RPC; each batch costs one server
// core slot. Batching amortizes that CPU cost — this bench sweeps the batch
// size under a fixed overwrite churn and reports server core time burned
// per reclaimed buffer and the wire messages used.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/kv/prism_kv.h"

int main() {
  using namespace prism;
  using bench::KeyOf;
  std::printf("== Ablation A5: buffer-reclamation batch size (§3.2) ==\n");
  std::printf("%8s %16s %22s %16s\n", "batch", "messages", "core-us/buffer",
              "free-list final");
  for (size_t batch : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    sim::Simulator sim;
    net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
    net::HostId server_host = fabric.AddHost("server");
    kv::PrismKvOptions opts;
    opts.n_buckets = 256;
    opts.n_buffers = 2048;
    opts.reclaim_batch = batch;
    kv::PrismKvServer server(&fabric, server_host, opts);
    net::HostId client_host = fabric.AddHost("client");
    kv::PrismKvClient client(&fabric, client_host, &server);
    const uint64_t msgs_before = fabric.total_messages();
    constexpr int kChurn = 512;
    sim::Spawn([&]() -> sim::Task<void> {
      for (int i = 0; i < kChurn; ++i) {
        PRISM_CHECK((co_await client.Put(KeyOf(1), Bytes(256, 1))).ok());
      }
      client.FlushReclaim();
    });
    sim.Run();
    const double core_us =
        sim::ToMicros(fabric.Cores(server_host).total_busy());
    std::printf("%8zu %16llu %22.3f %16zu\n", batch,
                static_cast<unsigned long long>(fabric.total_messages() -
                                                msgs_before),
                core_us / kChurn, server.free_buffers());
  }
  std::printf("(core time includes the PUT chains themselves; the delta "
              "across rows is the reclamation-RPC cost)\n");
  return 0;
}
