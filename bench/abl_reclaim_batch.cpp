// Ablation A5: reclamation batching (§3.2).
//
// Freed buffers return to the server via RPC; each batch costs one server
// core slot. Batching amortizes that CPU cost — this bench sweeps the batch
// size under a fixed overwrite churn and reports server core time burned
// per reclaimed buffer and the wire messages used.
//
// Each batch size is an independent simulation fanned out through the
// parallel sweep runner (--jobs=N).
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/kv/prism_kv.h"

namespace {

struct BatchRow {
  uint64_t messages = 0;
  double core_us_per_buffer = 0;
  size_t free_buffers = 0;
  uint64_t sim_events = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace prism;
  using bench::KeyOf;
  const std::vector<size_t> batches = {1, 4, 16, 64};
  constexpr int kChurn = 512;

  std::vector<harness::SweepPoint<BatchRow>> points;
  for (size_t batch : batches) {
    points.push_back([batch]() -> BatchRow {
      sim::Simulator sim;
      net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
      net::HostId server_host = fabric.AddHost("server");
      kv::PrismKvOptions opts;
      opts.n_buckets = 256;
      opts.n_buffers = 2048;
      opts.reclaim_batch = batch;
      kv::PrismKvServer server(&fabric, server_host, opts);
      net::HostId client_host = fabric.AddHost("client");
      kv::PrismKvClient client(&fabric, client_host, &server);
      const uint64_t msgs_before = fabric.total_messages();
      sim::Spawn([&]() -> sim::Task<void> {
        for (int i = 0; i < kChurn; ++i) {
          PRISM_CHECK((co_await client.Put(KeyOf(1), Bytes(256, 1))).ok());
        }
        client.FlushReclaim();
      });
      sim.Run();
      BatchRow row;
      row.messages = fabric.total_messages() - msgs_before;
      row.core_us_per_buffer =
          sim::ToMicros(fabric.Cores(server_host).total_busy()) / kChurn;
      row.free_buffers = server.free_buffers();
      row.sim_events = sim.executed_events();
      return row;
    });
  }

  const int jobs = harness::JobsFromArgs(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<BatchRow> rows =
      harness::RunSweep(points, harness::SweepOptions{jobs});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("== Ablation A5: buffer-reclamation batch size (§3.2) ==\n");
  std::printf("%8s %16s %22s %16s\n", "batch", "messages", "core-us/buffer",
              "free-list final");
  bench::FigureReporter reporter(
      "abl_reclaim_batch", "Ablation A5: buffer-reclamation batch size");
  for (size_t i = 0; i < batches.size(); ++i) {
    std::printf("%8zu %16llu %22.3f %16zu\n", batches[i],
                static_cast<unsigned long long>(rows[i].messages),
                rows[i].core_us_per_buffer, rows[i].free_buffers);
    workload::LoadPoint p;
    p.clients = 1;
    p.mean_us = rows[i].core_us_per_buffer;
    p.sim_events = rows[i].sim_events;
    reporter.AddRow("reclaim", p, static_cast<double>(batches[i]));
  }
  std::printf("(core time includes the PUT chains themselves; the delta "
              "across rows is the reclamation-RPC cost)\n");
  reporter.SetSweepMetrics(wall, jobs);
  reporter.WriteUnified();
  return 0;
}
