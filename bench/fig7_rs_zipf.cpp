// Figure 7: PRISM-RS vs ABD-LOCK latency as contention rises.
// 100 closed-loop clients, 50% writes, Zipf coefficient swept 0 → 1.2.
//
// Paper shape: PRISM-RS latency stays flat at every skew (CAS_GT never
// blocks), while ABD-LOCK degrades sharply once hot blocks cause lock
// conflicts and backoff.
#include "bench/rs_bench_lib.h"
#include "src/harness/sweep.h"

int main(int argc, char** argv) {
  prism::bench::RunRsZipfFigure("fig7_rs_zipf",
                                prism::harness::JobsFromArgs(argc, argv),
                                prism::bench::ObsFromArgs(argc, argv));
  return 0;
}
