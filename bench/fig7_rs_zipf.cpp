// Figure 7: PRISM-RS vs ABD-LOCK latency as contention rises.
// 100 closed-loop clients, 50% writes, Zipf coefficient swept 0 → 1.2.
//
// Paper shape: PRISM-RS latency stays flat at every skew (CAS_GT never
// blocks), while ABD-LOCK degrades sharply once hot blocks cause lock
// conflicts and backoff.
#include "bench/rs_bench_lib.h"

int main() {
  using namespace prism;
  using namespace prism::bench;
  BenchWindows windows = BenchWindows::Default();
  const int kClients = FastMode() ? 40 : 100;
  std::printf(
      "\n== Figure 7: latency vs Zipf coefficient (%d closed-loop clients, "
      "50%% writes) ==\n",
      kClients);
  std::printf("%6s %22s %24s %22s\n", "zipf", "ABDLOCK mean(us)",
              "ABDLOCK lock-failure%", "PRISM-RS mean(us)");
  std::vector<double> thetas = FastMode()
                                   ? std::vector<double>{0.0, 0.9, 1.2}
                                   : std::vector<double>{0.0, 0.2, 0.4, 0.6,
                                                         0.8, 0.9, 0.99, 1.1,
                                                         1.2};
  for (double theta : thetas) {
    auto abd = RunAbdLockPoint(kClients, 0.5, theta,
                               rdma::Backend::kHardwareNic, windows,
                               7000 + static_cast<uint64_t>(theta * 100));
    auto prism_point =
        RunPrismRsPoint(kClients, 0.5, theta, windows,
                        7500 + static_cast<uint64_t>(theta * 100));
    std::printf("%6.2f %22.1f %23.1f%% %22.1f\n", theta, abd.mean_us,
                abd.abort_rate * 100.0, prism_point.mean_us);
  }
  return 0;
}
