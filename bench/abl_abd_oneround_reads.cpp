// Ablation A9: one-round ABD reads (skip the write-back when the read
// quorum is unanimous — the classic ABD optimization, off by default to
// match the paper's measured two-phase protocol).
//
// Read-heavy workloads skip nearly every write-back, halving GET latency;
// under heavy write contention quorums disagree more often and the benefit
// shrinks.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/rs/prism_rs.h"

namespace prism {
namespace {

using sim::Task;

struct Outcome {
  double get_mean_us;
  double skipped_pct;
  uint64_t sim_events;
};

Outcome Run(bool optimized, double write_frac) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 64;
  opts.block_size = 512;
  opts.buffers_per_replica = 4096;
  opts.skip_unanimous_writeback = optimized;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    net::HostId host = fabric.AddHost("c" + std::to_string(c));
    clients.push_back(std::make_unique<rs::PrismRsClient>(
        &fabric, host, &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(5);
  std::vector<Rng> rngs;
  for (int c = 0; c < kClients; ++c) rngs.push_back(master.Fork());
  LatencyHistogram get_hist;
  uint64_t gets = 0;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn([&, c]() -> Task<void> {
      rs::PrismRsClient* client = clients[static_cast<size_t>(c)].get();
      Rng* rng = &rngs[static_cast<size_t>(c)];
      for (int i = 0; i < 150; ++i) {
        const uint64_t block = rng->NextBelow(64);
        if (rng->NextDouble() < write_frac) {
          PRISM_CHECK(
              (co_await client->Put(block, Bytes(512, 1))).ok());
        } else {
          sim::TimePoint start = sim.Now();
          auto v = co_await client->Get(block);
          PRISM_CHECK(v.ok());
          get_hist.Record(sim.Now() - start);
          gets++;
        }
      }
      client->FlushReclaim();
    });
  }
  sim.Run();
  uint64_t skipped = 0;
  for (auto& c : clients) skipped += c->writebacks_skipped();
  Outcome out;
  out.get_mean_us = get_hist.Summarize().mean_us;
  out.skipped_pct = gets > 0 ? 100.0 * static_cast<double>(skipped) /
                                   static_cast<double>(gets)
                             : 0;
  out.sim_events = sim.executed_events();
  return out;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  using namespace prism;
  const std::vector<double> write_fracs = {0.05, 0.3, 0.7};
  std::vector<harness::SweepPoint<Outcome>> points;
  for (double wf : write_fracs) {
    points.push_back([wf] { return Run(false, wf); });
    points.push_back([wf] { return Run(true, wf); });
  }
  const int jobs = harness::JobsFromArgs(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Outcome> rows =
      harness::RunSweep(points, harness::SweepOptions{jobs});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("== Ablation A9: one-round ABD reads (unanimous-quorum "
              "write-back elision) ==\n");
  std::printf("%12s %22s %24s %18s\n", "write frac", "stock GET mean(us)",
              "optimized GET mean(us)", "write-backs skipped");
  bench::FigureReporter reporter(
      "abl_abd_oneround_reads", "Ablation A9: one-round ABD reads");
  for (size_t i = 0; i < write_fracs.size(); ++i) {
    const Outcome& stock = rows[2 * i];
    const Outcome& opt = rows[2 * i + 1];
    std::printf("%12.2f %22.2f %24.2f %17.1f%%\n", write_fracs[i],
                stock.get_mean_us, opt.get_mean_us, opt.skipped_pct);
    for (size_t v = 0; v < 2; ++v) {
      workload::LoadPoint p;
      p.clients = 8;
      p.mean_us = rows[2 * i + v].get_mean_us;
      p.sim_events = rows[2 * i + v].sim_events;
      reporter.AddRow(v == 0 ? "stock" : "optimized", p, write_fracs[i]);
    }
  }
  reporter.SetSweepMetrics(wall, jobs);
  reporter.WriteUnified();
  return 0;
}
