// Ablation: intra-simulation parallelism (DESIGN.md §5.8).
//
// Scaling microbench for the windowed parallel DES core. One large
// simulation — `hosts` hosts paired into cross-partition ping-pong flows,
// each delivery charged a fixed CPU cost modelling per-message protocol
// processing — is run at --cores=1/2/4/8. The big DataCenterScale
// propagation delay (~24us) gives the conservative windows a wide
// lookahead, so each window carries enough deliveries per partition to
// amortize the two barrier crossings.
//
// Emits results/BENCH_psim.json: one row per cores value with wall time,
// event throughput, window/barrier counts, and speedup_vs_serial (the
// cores=1 run through the same ClusterSim is the baseline). The executed
// event count is asserted identical across all cores values — the scaling
// claim is only meaningful because every run does the exact same work.
//
// PRISM_BENCH_FAST=1 (the bench_smoke contract) shrinks the grid to
// cores={1,2} over a small host count so the schema check stays fast.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/sweep.h"
#include "src/net/fabric.h"
#include "src/sim/psim.h"

namespace {

struct PsimRow {
  int hosts = 0;
  int cores = 0;
  int partitions = 0;
  uint64_t events = 0;
  uint64_t deliveries = 0;
  uint64_t windows = 0;
  uint64_t barriers = 0;
  uint64_t wire_messages = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double speedup_vs_serial = 0;
  std::string serial_reason;
};

// Fixed per-delivery CPU burn (integer xorshift mix): stands in for the
// protocol work a real stack does per message. The sink defeats dead-code
// elimination; the loop is deterministic, so the simulation stays
// bit-identical across cores values.
uint64_t Churn(uint64_t seed, int iters) {
  uint64_t x = seed | 1;
  for (int i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

PsimRow RunOnce(int hosts, int cores, int rounds, int work_iters) {
  using namespace prism;
  PsimRow row;
  row.hosts = hosts;
  row.cores = cores;

  sim::ClusterSim cluster(cores);
  net::Fabric fabric(&cluster, net::CostModel::DataCenterScale());
  std::vector<net::HostId> ids;
  ids.reserve(hosts);
  for (int h = 0; h < hosts; ++h) {
    ids.push_back(fabric.AddHost("h" + std::to_string(h)));
  }

  // Pair host 2k with 2k+1: adjacent host ids always land in different
  // partitions (partition = host % P for every P >= 2), so every flow is
  // cross-partition traffic through the barrier merge.
  // Per-dst-host slots: each is only ever touched on its owner's engine
  // thread, so the bench itself adds no shared mutable state.
  const int pairs = hosts / 2;
  std::vector<uint64_t> sinks(static_cast<size_t>(hosts), 0);
  std::vector<uint64_t> delivered(static_cast<size_t>(hosts), 0);
  std::function<void(int, int, int)> volley = [&](int pair, int round,
                                                  int leg) {
    const net::HostId src = ids[2 * pair + (leg & 1)];
    const net::HostId dst = ids[2 * pair + 1 - (leg & 1)];
    fabric.Send(src, dst, /*payload_bytes=*/256, [&, pair, round, leg, dst] {
      sinks[dst] ^= Churn(static_cast<uint64_t>(pair) * 7919 + leg,
                          work_iters);
      ++delivered[dst];
      if (leg == 0) {
        volley(pair, round, 1);  // reply leg of this round trip
      } else if (round + 1 < rounds) {
        volley(pair, round + 1, 0);
      }
    });
  };
  for (int p = 0; p < pairs; ++p) volley(p, 0, 0);

  const auto t0 = std::chrono::steady_clock::now();
  cluster.Run();
  row.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (uint64_t d : delivered) row.deliveries += d;
  row.events = cluster.executed_events();
  row.windows = cluster.stats().windows;
  row.barriers = cluster.stats().barriers;
  row.partitions = cluster.stats().partitions;
  row.wire_messages = cluster.stats().wire_messages;
  row.events_per_sec =
      row.wall_seconds > 0 ? static_cast<double>(row.events) / row.wall_seconds
                           : 0;
  row.serial_reason = cluster.serial_reason();
  PRISM_CHECK_EQ(row.deliveries,
                 static_cast<uint64_t>(pairs) * rounds * 2)
      << "flows did not run to completion";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prism;

  const bool fast = std::getenv("PRISM_BENCH_FAST") != nullptr;
  int hosts = fast ? 8 : 120;
  int rounds = fast ? 8 : 200;
  int work_iters = fast ? 64 : 50000;
  std::vector<int> cores_grid = fast ? std::vector<int>{1, 2}
                                     : std::vector<int>{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--hosts=", 0) == 0) hosts = std::atoi(arg.c_str() + 8);
    if (arg.rfind("--rounds=", 0) == 0) rounds = std::atoi(arg.c_str() + 9);
    if (arg.rfind("--work=", 0) == 0) work_iters = std::atoi(arg.c_str() + 7);
  }
  // --cores=N / PRISM_CORES (the standard resolution chain) pins the grid
  // to {1, N}: the serial baseline plus the requested worker count.
  if (const int cores = harness::CoresFromArgs(argc, argv); cores > 1) {
    cores_grid = {1, cores};
  }
  PRISM_CHECK_GT(hosts, 1);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== Ablation: windowed parallel DES scaling (%d hosts, "
              "%d rounds, %d work iters, %u hw threads)%s ==\n",
              hosts, rounds, work_iters, hw, fast ? " [fast]" : "");
  if (hw < static_cast<unsigned>(cores_grid.back())) {
    std::printf("NOTE: only %u hardware thread(s) — partitions timeshare, "
                "so speedup_vs_serial measures window overhead, not "
                "scaling\n", hw);
  }
  std::printf("%6s %10s %12s %14s %10s %10s %10s\n", "cores", "wall-s",
              "events", "events/sec", "windows", "wire-msgs", "speedup");

  std::vector<PsimRow> rows;
  for (int cores : cores_grid) {
    PsimRow row = RunOnce(hosts, cores, rounds, work_iters);
    if (!rows.empty()) {
      // Same workload, same schedule: the scaling numbers compare equal
      // work or they compare nothing.
      PRISM_CHECK_EQ(row.events, rows.front().events)
          << "cores=" << cores << " executed a different schedule";
      row.speedup_vs_serial =
          row.wall_seconds > 0 ? rows.front().wall_seconds / row.wall_seconds
                               : 0;
    } else {
      row.speedup_vs_serial = 1.0;
    }
    std::printf("%6d %10.3f %12llu %14.3e %10llu %10llu %9.2fx\n", row.cores,
                row.wall_seconds, static_cast<unsigned long long>(row.events),
                row.events_per_sec,
                static_cast<unsigned long long>(row.windows),
                static_cast<unsigned long long>(row.wire_messages),
                row.speedup_vs_serial);
    rows.push_back(std::move(row));
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "abl_psim");
  json.Field("fast_mode", fast);
  // Speedup is only meaningful relative to the machine: on a box with
  // fewer hardware threads than `cores`, the partitions timeshare and the
  // row measures pure window/barrier overhead instead of scaling.
  json.Field("hw_threads",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.Field("hosts", rows.front().hosts);
  json.Field("rounds", static_cast<int64_t>(rounds));
  json.Field("work_iters", static_cast<int64_t>(work_iters));
  json.Field("cost_model", "DataCenterScale");
  json.BeginArray("rows");
  for (const PsimRow& r : rows) {
    json.BeginObject();
    json.Field("hosts", r.hosts);
    json.Field("cores", r.cores);
    json.Field("partitions", r.partitions);
    json.Field("events", r.events);
    json.Field("deliveries", r.deliveries);
    json.Field("windows", r.windows);
    json.Field("barriers", r.barriers);
    json.Field("wire_messages", r.wire_messages);
    json.Field("wall_seconds", r.wall_seconds);
    json.Field("events_per_sec", r.events_per_sec);
    json.Field("speedup_vs_serial", r.speedup_vs_serial);
    json.Field("serial_reason", r.serial_reason);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!json.WriteFile("results/BENCH_psim.json")) {
    std::fprintf(stderr, "abl_psim: failed to write results/BENCH_psim.json\n");
    return 1;
  }
  std::printf("wrote results/BENCH_psim.json\n");
  return 0;
}
