// Shared rig for the Figure 6 / Figure 7 replicated-block-store benchmarks.
#ifndef PRISM_BENCH_RS_BENCH_LIB_H_
#define PRISM_BENCH_RS_BENCH_LIB_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/rs/abd_lock.h"
#include "src/rs/prism_rs.h"

namespace prism::bench {

// Scaled-down store (DESIGN.md §1): 16 K blocks (2 K fast) instead of the
// paper's 8 M; identical 512 B blocks, 3 replicas, 50% writes.
inline uint64_t RsBlockCount() { return FastMode() ? 2048 : 16384; }
constexpr uint64_t kRsBlockSize = 512;
constexpr int kRsReplicas = 3;

inline workload::LoadPoint RunPrismRsPoint(int n_clients, double write_frac,
                                           double zipf_theta,
                                           const BenchWindows& windows,
                                           uint64_t seed) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = RsBlockCount();
  opts.block_size = kRsBlockSize;
  opts.buffers_per_replica = RsBlockCount() + 8192;
  rs::PrismRsCluster cluster(&fabric, kRsReplicas, opts);
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<rs::PrismRsClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(RsBlockCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    rs::PrismRsClient* client = clients[static_cast<size_t>(c)].get();
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t block = chooser.Next(*rng);
      const sim::TimePoint op_start = sim.Now();
      if (rng->NextDouble() < write_frac) {
        Status s = co_await client->Put(
            block, Bytes(kRsBlockSize, static_cast<uint8_t>(c)));
        PRISM_CHECK(s.ok()) << s;
      } else {
        auto r = co_await client->Get(block);
        PRISM_CHECK(r.ok()) << r.status();
      }
      recorder->Record(op_start);
    }
    client->FlushReclaim();
  };
  return RunClosedLoop(sim, n_clients, windows, loop);
}

inline workload::LoadPoint RunAbdLockPoint(int n_clients, double write_frac,
                                           double zipf_theta,
                                           rdma::Backend backend,
                                           const BenchWindows& windows,
                                           uint64_t seed) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::AbdLockOptions opts;
  opts.n_blocks = RsBlockCount();
  opts.block_size = kRsBlockSize;
  opts.backend = backend;
  rs::AbdLockCluster cluster(&fabric, kRsReplicas, opts);
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<rs::AbdLockClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<rs::AbdLockClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1), seed * 31 + 7));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(RsBlockCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    rs::AbdLockClient* client = clients[static_cast<size_t>(c)].get();
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t block = chooser.Next(*rng);
      const sim::TimePoint op_start = sim.Now();
      if (rng->NextDouble() < write_frac) {
        Status s = co_await client->Put(
            block, Bytes(kRsBlockSize, static_cast<uint8_t>(c)));
        if (!s.ok()) {
          recorder->RecordAbort();  // lock-acquisition exhaustion
          continue;
        }
      } else {
        auto r = co_await client->Get(block);
        if (!r.ok()) {
          recorder->RecordAbort();
          continue;
        }
      }
      recorder->Record(op_start);
    }
  };
  return RunClosedLoop(sim, n_clients, windows, loop);
}

}  // namespace prism::bench

#endif  // PRISM_BENCH_RS_BENCH_LIB_H_
