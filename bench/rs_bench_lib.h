// Shared rig for the Figure 6 / Figure 7 replicated-block-store benchmarks.
#ifndef PRISM_BENCH_RS_BENCH_LIB_H_
#define PRISM_BENCH_RS_BENCH_LIB_H_

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/rs/abd_lock.h"
#include "src/rs/prism_rs.h"

namespace prism::bench {

// Scaled-down store (DESIGN.md §1): 16 K blocks (2 K fast) instead of the
// paper's 8 M; identical 512 B blocks, 3 replicas, 50% writes.
inline uint64_t RsBlockCount() { return FastMode() ? 2048 : 16384; }
constexpr uint64_t kRsBlockSize = 512;
constexpr int kRsReplicas = 3;

inline workload::LoadPoint RunPrismRsPoint(int n_clients, double write_frac,
                                           double zipf_theta,
                                           const BenchWindows& windows,
                                           uint64_t seed,
                                           obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  rs::PrismRsOptions opts;
  opts.n_blocks = RsBlockCount();
  opts.block_size = kRsBlockSize;
  opts.buffers_per_replica = RsBlockCount() + 8192;
  rs::PrismRsCluster cluster(&fabric, kRsReplicas, opts);
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<rs::PrismRsClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<rs::PrismRsClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(RsBlockCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    rs::PrismRsClient* client = clients[static_cast<size_t>(c)].get();
    const net::HostId host =
        client_hosts[static_cast<size_t>(c) % client_hosts.size()];
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t block = chooser.Next(*rng);
      const bool is_put = rng->NextDouble() < write_frac;
      const sim::TimePoint op_start = sim.Now();
      const obs::TransportTally before = client->TransportTally();
      const obs::SpanId span = fabric.obs().StartSpan(
          is_put ? "rs.put" : "rs.get", "app", host, sim.Now());
      if (is_put) {
        Status s = co_await client->Put(
            block, Bytes(kRsBlockSize, static_cast<uint8_t>(c)));
        PRISM_CHECK(s.ok()) << s;
      } else {
        auto r = co_await client->Get(block);
        PRISM_CHECK(r.ok()) << r.status();
      }
      fabric.obs().FinishSpan(span, sim.Now());
      fabric.obs().ops().Record(is_put ? "rs.put" : "rs.get",
                                client->TransportTally() - before);
      recorder->Record(op_start);
    }
    client->FlushReclaim();
  };
  workload::LoadPoint p = RunClosedLoop(sim, n_clients, windows, loop);
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

inline workload::LoadPoint RunAbdLockPoint(int n_clients, double write_frac,
                                           double zipf_theta,
                                           rdma::Backend backend,
                                           const BenchWindows& windows,
                                           uint64_t seed,
                                           obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  rs::AbdLockOptions opts;
  opts.n_blocks = RsBlockCount();
  opts.block_size = kRsBlockSize;
  opts.backend = backend;
  rs::AbdLockCluster cluster(&fabric, kRsReplicas, opts);
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<rs::AbdLockClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<rs::AbdLockClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1), seed * 31 + 7));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(RsBlockCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    rs::AbdLockClient* client = clients[static_cast<size_t>(c)].get();
    const net::HostId host =
        client_hosts[static_cast<size_t>(c) % client_hosts.size()];
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t block = chooser.Next(*rng);
      const bool is_put = rng->NextDouble() < write_frac;
      const sim::TimePoint op_start = sim.Now();
      const obs::TransportTally before = client->TransportTally();
      const obs::SpanId span = fabric.obs().StartSpan(
          is_put ? "abd.put" : "abd.get", "app", host, sim.Now());
      bool ok = true;
      if (is_put) {
        Status s = co_await client->Put(
            block, Bytes(kRsBlockSize, static_cast<uint8_t>(c)));
        ok = s.ok();
      } else {
        auto r = co_await client->Get(block);
        ok = r.ok();
      }
      fabric.obs().FinishSpan(span, sim.Now());
      fabric.obs().ops().Record(is_put ? "abd.put" : "abd.get",
                                client->TransportTally() - before);
      if (!ok) {
        recorder->RecordAbort();  // lock-acquisition exhaustion
        continue;
      }
      recorder->Record(op_start);
    }
  };
  workload::LoadPoint p = RunClosedLoop(sim, n_clients, windows, loop);
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

// Figure 6: the full three-series client sweep, fanned out through the
// parallel sweep runner (each cell is a self-contained simulation).
inline void RunRsTputFigure(const char* bench_name, int jobs,
                            const ObsOptions& obs_opts = {}) {
  const char* title =
      "Figure 6: replicated block store, 3 replicas, 50% writes, uniform";
  BenchWindows windows = BenchWindows::Default();
  const std::vector<int> sweep = DefaultClientSweep();
  ObsRig rig(obs_opts, 3 * sweep.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"ABDLOCK", [=] {
                       return RunAbdLockPoint(
                           n, 0.5, 0.0, rdma::Backend::kHardwareNic, windows,
                           600 + static_cast<uint64_t>(n), po);
                     }});
  }
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"ABDLOCK (software RDMA)", [=] {
                       return RunAbdLockPoint(
                           n, 0.5, 0.0, rdma::Backend::kSoftwareStack,
                           windows, 700 + static_cast<uint64_t>(n), po);
                     }});
  }
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"PRISM-RS", [=] {
                       return RunPrismRsPoint(n, 0.5, 0.0, windows,
                                              800 + static_cast<uint64_t>(n),
                                              po);
                     }});
  }
  FigureReporter reporter(bench_name, title);
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  workload::PrintHeader(title);
  for (size_t i = 0; i < cells.size(); ++i) {
    workload::PrintRow(cells[i].series, rows[i]);
  }
  reporter.WriteUnified();
  rig.Finish(bench_name, cells);
}

// Figure 7: latency vs Zipf coefficient at fixed load, ABD-LOCK vs
// PRISM-RS, one cell per (theta, system).
inline void RunRsZipfFigure(const char* bench_name, int jobs,
                            const ObsOptions& obs_opts = {}) {
  BenchWindows windows = BenchWindows::Default();
  const int kClients = FastMode() ? 40 : 100;
  std::vector<double> thetas = FastMode()
                                   ? std::vector<double>{0.0, 0.9, 1.2}
                                   : std::vector<double>{0.0, 0.2, 0.4, 0.6,
                                                         0.8, 0.9, 0.99, 1.1,
                                                         1.2};
  ObsRig rig(obs_opts, 2 * thetas.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (double theta : thetas) {
    obs::PointObs* po_abd = rig.at(slot++);
    cells.push_back({"ABDLOCK", [=] {
                       return RunAbdLockPoint(
                           kClients, 0.5, theta, rdma::Backend::kHardwareNic,
                           windows,
                           7000 + static_cast<uint64_t>(theta * 100), po_abd);
                     },
                     theta});
    obs::PointObs* po_prism = rig.at(slot++);
    cells.push_back({"PRISM-RS", [=] {
                       return RunPrismRsPoint(
                           kClients, 0.5, theta, windows,
                           7500 + static_cast<uint64_t>(theta * 100),
                           po_prism);
                     },
                     theta});
  }
  FigureReporter reporter(
      bench_name, "Figure 7: latency vs Zipf coefficient, 50% writes");
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  std::printf(
      "\n== Figure 7: latency vs Zipf coefficient (%d closed-loop clients, "
      "50%% writes) ==\n",
      kClients);
  std::printf("%6s %22s %24s %22s\n", "zipf", "ABDLOCK mean(us)",
              "ABDLOCK lock-failure%", "PRISM-RS mean(us)");
  for (size_t i = 0; i < thetas.size(); ++i) {
    const workload::LoadPoint& abd = rows[2 * i];
    const workload::LoadPoint& prism_point = rows[2 * i + 1];
    std::printf("%6.2f %22.1f %23.1f%% %22.1f\n", thetas[i], abd.mean_us,
                abd.abort_rate * 100.0, prism_point.mean_us);
  }
  reporter.WriteUnified();
  rig.Finish(bench_name, cells);
}

}  // namespace prism::bench

#endif  // PRISM_BENCH_RS_BENCH_LIB_H_
