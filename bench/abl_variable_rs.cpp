// Ablation A8: variable-sized PRISM-RS blocks (the §7.3 extension).
//
// With fixed-size blocks every value is padded to block_size on the wire
// and in buffers; the ⟨tag,ptr,bound⟩ variant transfers exactly the stored
// length. This bench runs a mixed-size write/read workload under both modes
// and reports latency and wire bytes per operation.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/rs/prism_rs.h"

namespace prism {
namespace {

using sim::Task;

struct Outcome {
  double mean_us;
  double wire_bytes_per_op;
  uint64_t sim_events;
};

Outcome Run(bool variable) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  rs::PrismRsOptions opts;
  opts.n_blocks = 256;
  opts.block_size = 512;  // fixed size / variable maximum
  opts.buffers_per_replica = 4096;
  opts.variable_block_size = variable;
  rs::PrismRsCluster cluster(&fabric, 3, opts);
  net::HostId host = fabric.AddHost("client");
  rs::PrismRsClient client(&fabric, host, &cluster, 1);
  Rng rng(11);
  LatencyHistogram hist;
  const int kOps = 400;
  uint64_t bytes_before = fabric.total_wire_bytes();
  sim::Spawn([&]() -> Task<void> {
    for (int i = 0; i < kOps; ++i) {
      const uint64_t block = rng.NextBelow(256);
      // Log-uniform sizes 16..512 B; fixed mode pads everything to 512.
      uint64_t size = 16ull << rng.NextBelow(6);
      if (!variable) size = 512;
      sim::TimePoint start = sim.Now();
      if (rng.NextBool()) {
        Status s = co_await client.Put(block,
                                       Bytes(size, static_cast<uint8_t>(i)));
        PRISM_CHECK(s.ok()) << s;
      } else {
        auto v = co_await client.Get(block);
        PRISM_CHECK(v.ok());
      }
      hist.Record(sim.Now() - start);
    }
    client.FlushReclaim();
  });
  sim.Run();
  Outcome out;
  out.mean_us = hist.Summarize().mean_us;
  out.wire_bytes_per_op =
      static_cast<double>(fabric.total_wire_bytes() - bytes_before) / kOps;
  out.sim_events = sim.executed_events();
  return out;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  using namespace prism;
  const int jobs = harness::JobsFromArgs(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Outcome> rows = harness::RunSweep<Outcome>(
      {[] { return Run(false); }, [] { return Run(true); }},
      harness::SweepOptions{jobs});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const Outcome& fixed = rows[0];
  const Outcome& variable = rows[1];
  std::printf("== Ablation A8: fixed vs variable-size PRISM-RS blocks "
              "(§7.3 extension) ==\n");
  std::printf("workload: mixed 16–512 B values, 3 replicas, 50%% writes\n\n");
  std::printf("%-22s %12s %18s\n", "mode", "mean(us)", "wire bytes/op");
  std::printf("%-22s %12.2f %18.0f\n", "fixed (512 B blocks)", fixed.mean_us,
              fixed.wire_bytes_per_op);
  std::printf("%-22s %12.2f %18.0f   <- bounded reads + exact buffers\n",
              "variable ⟨tag,ptr,bound⟩", variable.mean_us,
              variable.wire_bytes_per_op);
  bench::FigureReporter reporter(
      "abl_variable_rs", "Ablation A8: fixed vs variable-size blocks");
  const char* names[] = {"fixed", "variable"};
  for (size_t i = 0; i < rows.size(); ++i) {
    workload::LoadPoint p;
    p.clients = 1;
    p.mean_us = rows[i].mean_us;
    p.sim_events = rows[i].sim_events;
    reporter.AddRow(names[i], p);
  }
  reporter.SetSweepMetrics(wall, jobs);
  reporter.WriteUnified();
  return 0;
}
