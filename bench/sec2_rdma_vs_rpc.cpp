// §2.1's motivating measurement: one-sided RDMA READ vs eRPC-style two-sided
// RPC, 512 B value, 40 GbE cluster.
//
// Paper numbers: one-sided READ ≈ 3.2 µs (43% faster than the 5.6 µs RPC) —
// but two chained READs (≈ 6.4 µs) are SLOWER than one RPC, which is the
// dilemma PRISM resolves.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/rdma/service.h"
#include "src/rpc/rpc.h"

namespace prism {
namespace {

using sim::Task;
using sim::ToMicros;

}  // namespace
}  // namespace prism

int main() {
  using namespace prism;
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 21);
  auto region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
  mem.StoreWord(region.base, region.base + 1024);
  mem.Store(region.base + 1024, Bytes(512, 0x42));
  rdma::RdmaService rdma_service(&fabric, server_host,
                                 rdma::Backend::kHardwareNic, &mem);
  rdma::RdmaClient rdma_client(&fabric, client_host);
  rpc::RpcServer rpc_server(&fabric, server_host);
  rpc_server.Register(1, [&](const rpc::Message&) -> Task<rpc::MessagePtr> {
    co_return rpc::Message::Of(Bytes(512, 0x42), 512 + 16);
  });
  rpc::RpcClient rpc_client(&fabric, client_host);

  double read_us = 0, two_reads_us = 0, rpc_us = 0;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint t0 = sim.Now();
    auto r1 = co_await rdma_client.Read(&rdma_service, region.rkey,
                                        region.base + 1024, 512);
    PRISM_CHECK(r1.ok());
    read_us = ToMicros(sim.Now() - t0);

    t0 = sim.Now();
    auto p = co_await rdma_client.Read(&rdma_service, region.rkey,
                                       region.base, 8);
    PRISM_CHECK(p.ok());
    auto r2 = co_await rdma_client.Read(&rdma_service, region.rkey,
                                        LoadU64(p->data()), 512);
    PRISM_CHECK(r2.ok());
    two_reads_us = ToMicros(sim.Now() - t0);

    t0 = sim.Now();
    auto resp = co_await rpc_client.Call(&rpc_server, 1,
                                         rpc::Message::Empty(24));
    PRISM_CHECK(resp.ok());
    rpc_us = ToMicros(sim.Now() - t0);
  });
  sim.Run();

  std::printf("== Sec 2.1: one-sided RDMA vs two-sided RPC (512 B, 40 GbE "
              "cluster) ==\n");
  std::printf("one-sided READ:        %6.2f us   (paper: ~3.2)\n", read_us);
  std::printf("two-sided RPC (eRPC):  %6.2f us   (paper: ~5.6)\n", rpc_us);
  std::printf("READ advantage:        %5.1f%%     (paper: ~43%% faster)\n",
              100.0 * (rpc_us - read_us) / rpc_us);
  std::printf("two chained READs:     %6.2f us   -> %s one RPC "
              "(paper: ~0.8 us slower)\n",
              two_reads_us, two_reads_us > rpc_us ? "SLOWER than" : "faster than");
  return 0;
}
