// Shared rig for the Figure 9 / Figure 10 transaction benchmarks.
//
// Workload: YCSB-T style short read-modify-write transactions (read one
// record, write it back modified) over a single shard running the full
// distributed commit protocol, as in §8.3.
#ifndef PRISM_BENCH_TX_BENCH_LIB_H_
#define PRISM_BENCH_TX_BENCH_LIB_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/tx/farm.h"
#include "src/tx/prism_tx.h"

namespace prism::bench {

inline uint64_t TxKeyCount() { return FastMode() ? 4096 : 32768; }
constexpr uint64_t kTxValueSize = 512;

inline workload::LoadPoint RunPrismTxPoint(int n_clients, double zipf_theta,
                                           const BenchWindows& windows,
                                           uint64_t seed,
                                           obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  tx::PrismTxOptions opts;
  opts.keys_per_shard = TxKeyCount();
  opts.value_size = kTxValueSize;
  opts.buffers_per_shard = TxKeyCount() + 8192;
  tx::PrismTxCluster cluster(&fabric, /*n_shards=*/1, opts);
  for (uint64_t k = 0; k < TxKeyCount(); ++k) {
    PRISM_CHECK(cluster.LoadKey(k, Bytes(kTxValueSize, 0x11)).ok());
  }
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<tx::PrismTxClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<tx::PrismTxClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(TxKeyCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    tx::PrismTxClient* client = clients[static_cast<size_t>(c)].get();
    const net::HostId host =
        client_hosts[static_cast<size_t>(c) % client_hosts.size()];
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t key = chooser.Next(*rng);
      const sim::TimePoint op_start = sim.Now();
      const obs::TransportTally before = client->TransportTally();
      const obs::SpanId span =
          fabric.obs().StartSpan("tx.rmw", "app", host, sim.Now());
      tx::Transaction txn = client->Begin();
      auto v = co_await client->Read(txn, key);
      if (!v.ok()) {
        fabric.obs().FinishSpan(span, sim.Now());
        fabric.obs().ops().Record("tx.rmw",
                                  client->TransportTally() - before);
        recorder->RecordAbort();
        continue;
      }
      Bytes updated = std::move(*v);
      updated[0] = static_cast<uint8_t>(updated[0] + 1);
      client->Write(txn, key, std::move(updated));
      Status s = co_await client->Commit(txn);
      fabric.obs().FinishSpan(span, sim.Now());
      fabric.obs().ops().Record("tx.rmw", client->TransportTally() - before);
      if (s.ok()) {
        recorder->Record(op_start);
      } else {
        recorder->RecordAbort();  // OCC conflict; YCSB-T retries as new txn
      }
    }
    client->FlushReclaim();
  };
  workload::LoadPoint p = RunClosedLoop(sim, n_clients, windows, loop);
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

inline workload::LoadPoint RunFarmPoint(int n_clients, double zipf_theta,
                                        rdma::Backend backend,
                                        const BenchWindows& windows,
                                        uint64_t seed,
                                        obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  tx::FarmOptions opts;
  opts.keys_per_shard = TxKeyCount();
  opts.value_size = kTxValueSize;
  opts.backend = backend;
  tx::FarmCluster cluster(&fabric, /*n_shards=*/1, opts);
  for (uint64_t k = 0; k < TxKeyCount(); ++k) {
    PRISM_CHECK(cluster.LoadKey(k, Bytes(kTxValueSize, 0x11)).ok());
  }
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<tx::FarmClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<tx::FarmClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(TxKeyCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    tx::FarmClient* client = clients[static_cast<size_t>(c)].get();
    const net::HostId host =
        client_hosts[static_cast<size_t>(c) % client_hosts.size()];
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t key = chooser.Next(*rng);
      const sim::TimePoint op_start = sim.Now();
      const obs::TransportTally before = client->TransportTally();
      const obs::SpanId span =
          fabric.obs().StartSpan("tx.rmw", "app", host, sim.Now());
      tx::Transaction txn = client->Begin();
      auto v = co_await client->Read(txn, key);
      if (!v.ok()) {
        fabric.obs().FinishSpan(span, sim.Now());
        fabric.obs().ops().Record("tx.rmw",
                                  client->TransportTally() - before);
        recorder->RecordAbort();
        continue;
      }
      Bytes updated = std::move(*v);
      updated[0] = static_cast<uint8_t>(updated[0] + 1);
      client->Write(txn, key, std::move(updated));
      Status s = co_await client->Commit(txn);
      fabric.obs().FinishSpan(span, sim.Now());
      fabric.obs().ops().Record("tx.rmw", client->TransportTally() - before);
      if (s.ok()) {
        recorder->Record(op_start);
      } else {
        recorder->RecordAbort();
      }
    }
  };
  workload::LoadPoint p = RunClosedLoop(sim, n_clients, windows, loop);
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

// Figure 9: the full three-series client sweep (FaRM hw / FaRM sw /
// PRISM-TX) through the parallel sweep runner.
inline void RunTxTputFigure(const char* bench_name, int jobs,
                            const ObsOptions& obs_opts = {}) {
  const char* title =
      "Figure 9: transactions, YCSB-T RMW, uniform, single shard";
  BenchWindows windows = BenchWindows::Default();
  const std::vector<int> sweep = DefaultClientSweep();
  ObsRig rig(obs_opts, 3 * sweep.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"FaRM", [=] {
                       return RunFarmPoint(
                           n, 0.0, rdma::Backend::kHardwareNic, windows,
                           900 + static_cast<uint64_t>(n), po);
                     }});
  }
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"FaRM (software RDMA)", [=] {
                       return RunFarmPoint(
                           n, 0.0, rdma::Backend::kSoftwareStack, windows,
                           910 + static_cast<uint64_t>(n), po);
                     }});
  }
  for (int n : sweep) {
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"PRISM-TX", [=] {
                       return RunPrismTxPoint(
                           n, 0.0, windows, 920 + static_cast<uint64_t>(n),
                           po);
                     }});
  }
  FigureReporter reporter(bench_name, title);
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  workload::PrintHeader(title, "abort%");
  for (size_t i = 0; i < cells.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.2f%%", rows[i].abort_rate * 100);
    workload::PrintRow(cells[i].series, rows[i], buf);
  }
  reporter.WriteUnified();
  rig.Finish(bench_name, cells);
}

// Figure 10: peak throughput vs Zipf coefficient, one cell per
// (theta, system).
inline void RunTxZipfFigure(const char* bench_name, int jobs,
                            const ObsOptions& obs_opts = {}) {
  BenchWindows windows = BenchWindows::Default();
  const int kClients = FastMode() ? 96 : 192;  // near-peak load
  std::vector<double> thetas =
      FastMode() ? std::vector<double>{0.0, 0.9, 1.4}
                 : std::vector<double>{0.0, 0.3, 0.6, 0.8, 0.9, 0.99, 1.2,
                                       1.4, 1.6};
  ObsRig rig(obs_opts, 3 * thetas.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (double theta : thetas) {
    obs::PointObs* po_farm = rig.at(slot++);
    cells.push_back({"FaRM", [=] {
                       return RunFarmPoint(
                           kClients, theta, rdma::Backend::kHardwareNic,
                           windows, 100 + static_cast<uint64_t>(theta * 10),
                           po_farm);
                     },
                     theta});
    obs::PointObs* po_sw = rig.at(slot++);
    cells.push_back({"FaRM (software RDMA)", [=] {
                       return RunFarmPoint(
                           kClients, theta, rdma::Backend::kSoftwareStack,
                           windows, 200 + static_cast<uint64_t>(theta * 10),
                           po_sw);
                     },
                     theta});
    obs::PointObs* po_prism = rig.at(slot++);
    cells.push_back({"PRISM-TX", [=] {
                       return RunPrismTxPoint(
                           kClients, theta, windows,
                           300 + static_cast<uint64_t>(theta * 10),
                           po_prism);
                     },
                     theta});
  }
  FigureReporter reporter(
      bench_name,
      "Figure 10: peak throughput vs Zipf coefficient (YCSB-T RMW)");
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  std::printf(
      "\n== Figure 10: peak throughput vs Zipf coefficient (YCSB-T RMW, %d "
      "clients) ==\n",
      kClients);
  std::printf("%6s %14s %10s %26s %10s %16s %10s\n", "zipf", "FaRM(Mtxn/s)",
              "abort%", "FaRM-softRDMA(Mtxn/s)", "abort%",
              "PRISM-TX(Mtxn/s)", "abort%");
  for (size_t i = 0; i < thetas.size(); ++i) {
    const workload::LoadPoint& farm = rows[3 * i];
    const workload::LoadPoint& farm_sw = rows[3 * i + 1];
    const workload::LoadPoint& prism_point = rows[3 * i + 2];
    std::printf("%6.2f %14.3f %9.1f%% %26.3f %9.1f%% %16.3f %9.1f%%\n",
                thetas[i], farm.tput_mops, farm.abort_rate * 100,
                farm_sw.tput_mops, farm_sw.abort_rate * 100,
                prism_point.tput_mops, prism_point.abort_rate * 100);
  }
  reporter.WriteUnified();
  rig.Finish(bench_name, cells);
}

}  // namespace prism::bench

#endif  // PRISM_BENCH_TX_BENCH_LIB_H_
