// Shared rig for the Figure 9 / Figure 10 transaction benchmarks.
//
// Workload: YCSB-T style short read-modify-write transactions (read one
// record, write it back modified) over a single shard running the full
// distributed commit protocol, as in §8.3.
#ifndef PRISM_BENCH_TX_BENCH_LIB_H_
#define PRISM_BENCH_TX_BENCH_LIB_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/tx/farm.h"
#include "src/tx/prism_tx.h"

namespace prism::bench {

inline uint64_t TxKeyCount() { return FastMode() ? 4096 : 32768; }
constexpr uint64_t kTxValueSize = 512;

inline workload::LoadPoint RunPrismTxPoint(int n_clients, double zipf_theta,
                                           const BenchWindows& windows,
                                           uint64_t seed) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  tx::PrismTxOptions opts;
  opts.keys_per_shard = TxKeyCount();
  opts.value_size = kTxValueSize;
  opts.buffers_per_shard = TxKeyCount() + 8192;
  tx::PrismTxCluster cluster(&fabric, /*n_shards=*/1, opts);
  for (uint64_t k = 0; k < TxKeyCount(); ++k) {
    PRISM_CHECK(cluster.LoadKey(k, Bytes(kTxValueSize, 0x11)).ok());
  }
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<tx::PrismTxClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<tx::PrismTxClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(TxKeyCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    tx::PrismTxClient* client = clients[static_cast<size_t>(c)].get();
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t key = chooser.Next(*rng);
      const sim::TimePoint op_start = sim.Now();
      tx::Transaction txn = client->Begin();
      auto v = co_await client->Read(txn, key);
      if (!v.ok()) {
        recorder->RecordAbort();
        continue;
      }
      Bytes updated = std::move(*v);
      updated[0] = static_cast<uint8_t>(updated[0] + 1);
      client->Write(txn, key, std::move(updated));
      Status s = co_await client->Commit(txn);
      if (s.ok()) {
        recorder->Record(op_start);
      } else {
        recorder->RecordAbort();  // OCC conflict; YCSB-T retries as new txn
      }
    }
    client->FlushReclaim();
  };
  return RunClosedLoop(sim, n_clients, windows, loop);
}

inline workload::LoadPoint RunFarmPoint(int n_clients, double zipf_theta,
                                        rdma::Backend backend,
                                        const BenchWindows& windows,
                                        uint64_t seed) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  tx::FarmOptions opts;
  opts.keys_per_shard = TxKeyCount();
  opts.value_size = kTxValueSize;
  opts.backend = backend;
  tx::FarmCluster cluster(&fabric, /*n_shards=*/1, opts);
  for (uint64_t k = 0; k < TxKeyCount(); ++k) {
    PRISM_CHECK(cluster.LoadKey(k, Bytes(kTxValueSize, 0x11)).ok());
  }
  auto client_hosts = AddClientHosts(fabric);
  std::vector<std::unique_ptr<tx::FarmClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.push_back(std::make_unique<tx::FarmClient>(
        &fabric, client_hosts[static_cast<size_t>(c) % client_hosts.size()],
        &cluster, static_cast<uint16_t>(c + 1)));
  }
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < n_clients; ++c) rngs.push_back(master.Fork());
  workload::KeyChooser chooser(TxKeyCount(), zipf_theta);
  auto loop = [&](int c, workload::Recorder* recorder) -> sim::Task<void> {
    tx::FarmClient* client = clients[static_cast<size_t>(c)].get();
    Rng* rng = &rngs[static_cast<size_t>(c)];
    while (sim.Now() < recorder->measure_end()) {
      const uint64_t key = chooser.Next(*rng);
      const sim::TimePoint op_start = sim.Now();
      tx::Transaction txn = client->Begin();
      auto v = co_await client->Read(txn, key);
      if (!v.ok()) {
        recorder->RecordAbort();
        continue;
      }
      Bytes updated = std::move(*v);
      updated[0] = static_cast<uint8_t>(updated[0] + 1);
      client->Write(txn, key, std::move(updated));
      Status s = co_await client->Commit(txn);
      if (s.ok()) {
        recorder->Record(op_start);
      } else {
        recorder->RecordAbort();
      }
    }
  };
  return RunClosedLoop(sim, n_clients, windows, loop);
}

}  // namespace prism::bench

#endif  // PRISM_BENCH_TX_BENCH_LIB_H_
