// Ablation A4: PRISM-KV PUT with a cached hash-table slot (§6.2's remark).
//
// The stock PUT spends round trip 1 probing the slot (and learning the old
// buffer address). A read-modify-write client already knows both from its
// preceding GET, so the install chain alone suffices — the paper notes this
// halves PUT latency for RMW workloads. This bench measures GET, stock PUT
// (2 RTs), and cached-slot PUT (1 RT).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/kv/prism_kv.h"

namespace prism {
namespace {

using core::Chain;
using core::Op;
using sim::Task;
using sim::ToMicros;

}  // namespace
}  // namespace prism

int main() {
  using namespace prism;
  using bench::KeyOf;
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  kv::PrismKvOptions opts;
  opts.n_buckets = 1024;
  opts.n_buffers = 4096;
  opts.dense_key_hash = true;
  kv::PrismKvServer server(&fabric, server_host, opts);
  net::HostId client_host = fabric.AddHost("client");
  kv::PrismKvClient client(&fabric, client_host, &server);
  core::PrismClient raw(&fabric, client_host);
  rdma::Addr scratch = *server.prism().AllocateScratch(16);

  const int iters = 32;
  double get_us = 0, put_us = 0, cached_put_us = 0;
  sim::Spawn([&]() -> Task<void> {
    (void)co_await client.Put(KeyOf(1), Bytes(512, 1));
    for (int i = 0; i < iters; ++i) {
      sim::TimePoint t0 = sim.Now();
      auto v = co_await client.Get(KeyOf(1));
      PRISM_CHECK(v.ok());
      get_us += ToMicros(sim.Now() - t0);

      t0 = sim.Now();
      PRISM_CHECK((co_await client.Put(KeyOf(1), Bytes(512, 2))).ok());
      put_us += ToMicros(sim.Now() - t0);

      // Cached-slot PUT: the client remembers the bucket and current buffer
      // address (from a preceding read, here read server-side for brevity)
      // and issues only the install chain.
      const uint64_t bucket = server.HashBucket(BytesOfString(KeyOf(1)));
      const rdma::Addr old_ptr =
          server.memory().LoadWord(server.slot_addr(bucket));
      Bytes record = kv::EncodeRecord(BytesOfString(KeyOf(1)),
                                      Bytes(512, 3));
      t0 = sim.Now();
      Chain chain;
      chain.push_back(Op::Write(server.rkey(), scratch + 8,
                                BytesOfU64(record.size())));
      chain.push_back(Op::Allocate(server.rkey(), server.freelist(), record)
                          .RedirectTo(scratch)
                          .Conditional());
      Op install = Op::CompareSwapCas(
          server.rkey(), server.slot_addr(bucket),
          BytesOfU64Pair(old_ptr, 0), BytesOfU64(scratch),
          FieldMask(16, 0, 8), FieldMask(16, 0, 16));
      install.data_indirect = true;
      install.conditional = true;
      chain.push_back(std::move(install));
      auto r = co_await raw.Execute(&server.prism(), std::move(chain));
      PRISM_CHECK(r.ok());
      PRISM_CHECK((*r)[2].cas_swapped);
      cached_put_us += ToMicros(sim.Now() - t0);
    }
  });
  sim.Run();

  std::printf("== Ablation A4: PRISM-KV PUT with cached slot (§6.2) ==\n");
  std::printf("GET (1 RT):             %6.2f us\n", get_us / iters);
  std::printf("PUT, stock (2 RTs):     %6.2f us\n", put_us / iters);
  std::printf("PUT, cached slot (1 RT):%6.2f us   <- read-modify-write "
              "workloads skip the probe\n",
              cached_put_us / iters);
  return 0;
}
