// Ablation A7: the pattern-search extension (§9, Snap) vs transferring the
// haystack. Sweeps the remote-buffer size; reports latency and wire bytes
// for (a) READ-everything + client-side scan, (b) one SEARCH op.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/prism/service.h"

namespace prism {
namespace {

using core::Op;
using sim::Task;
using sim::ToMicros;

struct Sample {
  double us;
  uint64_t wire_bytes;
  uint64_t sim_events = 0;
};

Sample Measure(bool use_search, uint64_t haystack, core::Deployment dep) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem((haystack + (1 << 20)) * 2);
  core::PrismServer server(&fabric, server_host, dep, &mem);
  auto region = *mem.CarveAndRegister(haystack + 4096, rdma::kRemoteAll);
  Bytes data(haystack, 'x');
  std::memcpy(data.data() + haystack - 16, "NEEDLE", 6);
  mem.Store(region.base, data);
  core::PrismClient client(&fabric, client_host);
  Sample out{0, 0};
  uint64_t before = fabric.total_wire_bytes();
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint t0 = sim.Now();
    if (use_search) {
      Op search = Op::Search(region.rkey, region.base, haystack,
                             BytesOfString("NEEDLE"));
      auto r = co_await client.ExecuteOne(&server, std::move(search));
      PRISM_CHECK(r.ok());
      PRISM_CHECK(LoadU64(r->data.data()) == haystack - 16);
    } else {
      Op read = Op::Read(region.rkey, region.base, haystack);
      auto r = co_await client.ExecuteOne(&server, std::move(read));
      PRISM_CHECK(r.ok());
      // Client-side scan cost is charged as CRC-like CPU time per KiB.
      co_await sim::SleepFor(&sim, fabric.cost().app_crc_check *
                                       static_cast<int64_t>(haystack / 512));
    }
    out.us = ToMicros(sim.Now() - t0);
  });
  sim.Run();
  out.wire_bytes = fabric.total_wire_bytes() - before;
  out.sim_events = sim.executed_events();
  return out;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  using namespace prism;
  const std::vector<uint64_t> sizes = {uint64_t{1} << 10, uint64_t{1} << 12,
                                       uint64_t{1} << 14, uint64_t{1} << 16,
                                       uint64_t{1} << 18};
  std::vector<harness::SweepPoint<Sample>> points;
  for (uint64_t size : sizes) {
    points.push_back(
        [size] { return Measure(false, size, core::Deployment::kSoftware); });
    points.push_back(
        [size] { return Measure(true, size, core::Deployment::kSoftware); });
  }
  const int jobs = harness::JobsFromArgs(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Sample> rows =
      harness::RunSweep(points, harness::SweepOptions{jobs});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("== Ablation A7: pattern search vs transfer-and-scan "
              "(software PRISM) ==\n");
  std::printf("%10s %14s %12s %14s %12s\n", "haystack", "READ+scan(us)",
              "wire(B)", "SEARCH(us)", "wire(B)");
  bench::FigureReporter reporter(
      "abl_search", "Ablation A7: pattern search vs transfer-and-scan");
  for (size_t i = 0; i < sizes.size(); ++i) {
    const Sample& read = rows[2 * i];
    const Sample& search = rows[2 * i + 1];
    std::printf("%9lluK %14.1f %12llu %14.1f %12llu\n",
                static_cast<unsigned long long>(sizes[i] / 1024), read.us,
                static_cast<unsigned long long>(read.wire_bytes), search.us,
                static_cast<unsigned long long>(search.wire_bytes));
    for (size_t v = 0; v < 2; ++v) {
      workload::LoadPoint p;
      p.clients = 1;
      p.mean_us = rows[2 * i + v].us;
      p.sim_events = rows[2 * i + v].sim_events;
      reporter.AddRow(v == 0 ? "READ+scan" : "SEARCH", p,
                      static_cast<double>(sizes[i]));
    }
  }
  reporter.SetSweepMetrics(wall, jobs);
  reporter.WriteUnified();
  return 0;
}
