// Ablation A7: the pattern-search extension (§9, Snap) vs transferring the
// haystack. Sweeps the remote-buffer size; reports latency and wire bytes
// for (a) READ-everything + client-side scan, (b) one SEARCH op.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/prism/service.h"

namespace prism {
namespace {

using core::Op;
using sim::Task;
using sim::ToMicros;

struct Sample {
  double us;
  uint64_t wire_bytes;
};

Sample Measure(bool use_search, uint64_t haystack, core::Deployment dep) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem((haystack + (1 << 20)) * 2);
  core::PrismServer server(&fabric, server_host, dep, &mem);
  auto region = *mem.CarveAndRegister(haystack + 4096, rdma::kRemoteAll);
  Bytes data(haystack, 'x');
  std::memcpy(data.data() + haystack - 16, "NEEDLE", 6);
  mem.Store(region.base, data);
  core::PrismClient client(&fabric, client_host);
  Sample out{0, 0};
  uint64_t before = fabric.total_wire_bytes();
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint t0 = sim.Now();
    if (use_search) {
      Op search = Op::Search(region.rkey, region.base, haystack,
                             BytesOfString("NEEDLE"));
      auto r = co_await client.ExecuteOne(&server, std::move(search));
      PRISM_CHECK(r.ok());
      PRISM_CHECK(LoadU64(r->data.data()) == haystack - 16);
    } else {
      Op read = Op::Read(region.rkey, region.base, haystack);
      auto r = co_await client.ExecuteOne(&server, std::move(read));
      PRISM_CHECK(r.ok());
      // Client-side scan cost is charged as CRC-like CPU time per KiB.
      co_await sim::SleepFor(&sim, fabric.cost().app_crc_check *
                                       static_cast<int64_t>(haystack / 512));
    }
    out.us = ToMicros(sim.Now() - t0);
  });
  sim.Run();
  out.wire_bytes = fabric.total_wire_bytes() - before;
  return out;
}

}  // namespace
}  // namespace prism

int main() {
  using namespace prism;
  std::printf("== Ablation A7: pattern search vs transfer-and-scan "
              "(software PRISM) ==\n");
  std::printf("%10s %14s %12s %14s %12s\n", "haystack", "READ+scan(us)",
              "wire(B)", "SEARCH(us)", "wire(B)");
  for (uint64_t size : {uint64_t{1} << 10, uint64_t{1} << 12,
                        uint64_t{1} << 14, uint64_t{1} << 16,
                        uint64_t{1} << 18}) {
    Sample read = Measure(false, size, core::Deployment::kSoftware);
    Sample search = Measure(true, size, core::Deployment::kSoftware);
    std::printf("%9lluK %14.1f %12llu %14.1f %12llu\n",
                static_cast<unsigned long long>(size / 1024), read.us,
                static_cast<unsigned long long>(read.wire_bytes), search.us,
                static_cast<unsigned long long>(search.wire_bytes));
  }
  return 0;
}
