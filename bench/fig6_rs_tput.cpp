// Figure 6: PRISM-RS vs lock-based ABD, throughput vs average latency.
// 3 replicas, 50% writes, uniform access, 512 B blocks.
//
// Paper shape: PRISM-RS is ~2 µs faster than hardware ABD-LOCK at low load
// (2 chained phases vs 4 sequential lock/read/write/unlock round trips) and
// saturates several Mops later (6 messages per op instead of 12).
#include "bench/rs_bench_lib.h"

int main() {
  using namespace prism;
  using namespace prism::bench;
  BenchWindows windows = BenchWindows::Default();
  workload::PrintHeader(
      "Figure 6: replicated block store, 3 replicas, 50% writes, uniform");
  for (int n : DefaultClientSweep()) {
    workload::PrintRow(
        "ABDLOCK", RunAbdLockPoint(n, 0.5, 0.0, rdma::Backend::kHardwareNic,
                                   windows, 600 + static_cast<uint64_t>(n)));
  }
  for (int n : DefaultClientSweep()) {
    workload::PrintRow(
        "ABDLOCK (software RDMA)",
        RunAbdLockPoint(n, 0.5, 0.0, rdma::Backend::kSoftwareStack, windows,
                        700 + static_cast<uint64_t>(n)));
  }
  for (int n : DefaultClientSweep()) {
    workload::PrintRow("PRISM-RS",
                       RunPrismRsPoint(n, 0.5, 0.0, windows,
                                       800 + static_cast<uint64_t>(n)));
  }
  return 0;
}
