// Figure 6: PRISM-RS vs lock-based ABD, throughput vs average latency.
// 3 replicas, 50% writes, uniform access, 512 B blocks.
//
// Paper shape: PRISM-RS is ~2 µs faster than hardware ABD-LOCK at low load
// (2 chained phases vs 4 sequential lock/read/write/unlock round trips) and
// saturates several Mops later (6 messages per op instead of 12).
#include "bench/rs_bench_lib.h"
#include "src/harness/sweep.h"

int main(int argc, char** argv) {
  prism::bench::RunRsTputFigure("fig6_rs_tput",
                                prism::harness::JobsFromArgs(argc, argv),
                                prism::bench::ObsFromArgs(argc, argv));
  return 0;
}
