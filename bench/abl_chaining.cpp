// Ablation A1: operation chaining (§3.4).
//
// The same k dependent operations executed (a) as one PRISM chain in a
// single round trip vs (b) as k sequential round trips. Chaining converts
// k network RTTs into one RTT plus k small per-op server costs; the win
// grows with k and with network depth.
//
// Every (k, mode, tier) cell is an independent simulation fanned out
// through the parallel sweep runner (--jobs=N).
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/prism/service.h"

namespace prism {
namespace {

using core::Chain;
using core::Op;
using sim::Task;
using sim::ToMicros;

workload::LoadPoint PointOf(double us, const sim::Simulator& sim) {
  workload::LoadPoint p;
  p.clients = 1;
  p.mean_us = p.p50_us = p.p99_us = p.p999_us = us;
  p.sim_events = sim.executed_events();
  return p;
}

workload::LoadPoint MeasureChained(net::CostModel model, int k) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, model);
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 21);
  core::PrismServer server(&fabric, server_host,
                           core::Deployment::kSoftware, &mem);
  auto region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
  core::PrismClient client(&fabric, client_host);
  double us = 0;
  sim::Spawn([&]() -> Task<void> {
    Chain chain;
    for (int i = 0; i < k; ++i) {
      chain.push_back(Op::Write(region.rkey,
                                region.base + static_cast<uint64_t>(i) * 64,
                                Bytes(64, 1)));
    }
    sim::TimePoint start = sim.Now();
    auto r = co_await client.Execute(&server, std::move(chain));
    PRISM_CHECK(r.ok());
    us = ToMicros(sim.Now() - start);
  });
  sim.Run();
  return PointOf(us, sim);
}

workload::LoadPoint MeasureSequential(net::CostModel model, int k) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, model);
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 21);
  core::PrismServer server(&fabric, server_host,
                           core::Deployment::kSoftware, &mem);
  auto region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
  core::PrismClient client(&fabric, client_host);
  double us = 0;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim.Now();
    for (int i = 0; i < k; ++i) {
      Op op = Op::Write(region.rkey,
                        region.base + static_cast<uint64_t>(i) * 64,
                        Bytes(64, 1));
      auto r = co_await client.ExecuteOne(&server, std::move(op));
      PRISM_CHECK(r.ok());
    }
    us = ToMicros(sim.Now() - start);
  });
  sim.Run();
  return PointOf(us, sim);
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  using namespace prism;
  const std::vector<int> ks = {1, 2, 3, 4, 8, 16};
  std::vector<bench::SweepCell> cells;
  for (int k : ks) {
    const double x = k;
    cells.push_back({"chained (cluster)", [=] {
                       return MeasureChained(net::CostModel::EvalCluster40G(),
                                             k);
                     },
                     x});
    cells.push_back({"sequential (cluster)", [=] {
                       return MeasureSequential(
                           net::CostModel::EvalCluster40G(), k);
                     },
                     x});
    cells.push_back({"chained (datacenter)", [=] {
                       return MeasureChained(
                           net::CostModel::DataCenterScale(), k);
                     },
                     x});
    cells.push_back({"sequential (datacenter)", [=] {
                       return MeasureSequential(
                           net::CostModel::DataCenterScale(), k);
                     },
                     x});
  }
  bench::FigureReporter reporter(
      "abl_chaining",
      "Ablation A1: chaining k ops in 1 RT vs k sequential RTs");
  std::vector<workload::LoadPoint> rows = bench::RunFigureSweep(
      reporter, cells, harness::JobsFromArgs(argc, argv));
  std::printf("== Ablation A1: chaining k ops in 1 RT vs k sequential RTs "
              "(software PRISM) ==\n");
  std::printf("%4s | %-28s | %-28s\n", "", "cluster (0.6us ToR)",
              "datacenter (+24us)");
  std::printf("%4s %12s %14s %12s %14s\n", "k", "chained(us)",
              "sequential(us)", "chained(us)", "sequential(us)");
  for (size_t i = 0; i < ks.size(); ++i) {
    std::printf("%4d %12.1f %14.1f %12.1f %14.1f\n", ks[i],
                rows[4 * i].mean_us, rows[4 * i + 1].mean_us,
                rows[4 * i + 2].mean_us, rows[4 * i + 3].mean_us);
  }
  reporter.WriteUnified();
  return 0;
}
