// Figure 10: peak transaction throughput vs contention (Zipf coefficient),
// YCSB-T read-modify-write transactions.
//
// Paper shape: both systems lose throughput as skew rises (OCC and lock
// conflicts), but PRISM-TX maintains its advantage across the whole sweep.
#include "bench/tx_bench_lib.h"
#include "src/harness/sweep.h"

int main(int argc, char** argv) {
  prism::bench::RunTxZipfFigure("fig10_tx_zipf",
                                prism::harness::JobsFromArgs(argc, argv),
                                prism::bench::ObsFromArgs(argc, argv));
  return 0;
}
