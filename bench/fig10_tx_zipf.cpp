// Figure 10: peak transaction throughput vs contention (Zipf coefficient),
// YCSB-T read-modify-write transactions.
//
// Paper shape: both systems lose throughput as skew rises (OCC and lock
// conflicts), but PRISM-TX maintains its advantage across the whole sweep.
#include "bench/tx_bench_lib.h"

int main() {
  using namespace prism;
  using namespace prism::bench;
  BenchWindows windows = BenchWindows::Default();
  const int kClients = FastMode() ? 96 : 192;  // near-peak load
  std::printf(
      "\n== Figure 10: peak throughput vs Zipf coefficient (YCSB-T RMW, %d "
      "clients) ==\n",
      kClients);
  std::printf("%6s %14s %10s %26s %10s %16s %10s\n", "zipf", "FaRM(Mtxn/s)",
              "abort%", "FaRM-softRDMA(Mtxn/s)", "abort%",
              "PRISM-TX(Mtxn/s)", "abort%");
  std::vector<double> thetas =
      FastMode() ? std::vector<double>{0.0, 0.9, 1.4}
                 : std::vector<double>{0.0, 0.3, 0.6, 0.8, 0.9, 0.99, 1.2,
                                       1.4, 1.6};
  for (double theta : thetas) {
    auto farm = RunFarmPoint(kClients, theta, rdma::Backend::kHardwareNic,
                             windows, 100 + static_cast<uint64_t>(theta * 10));
    auto farm_sw =
        RunFarmPoint(kClients, theta, rdma::Backend::kSoftwareStack, windows,
                     200 + static_cast<uint64_t>(theta * 10));
    auto prism_point = RunPrismTxPoint(
        kClients, theta, windows, 300 + static_cast<uint64_t>(theta * 10));
    std::printf("%6.2f %14.3f %9.1f%% %26.3f %9.1f%% %16.3f %9.1f%%\n", theta,
                farm.tput_mops, farm.abort_rate * 100, farm_sw.tput_mops,
                farm_sw.abort_rate * 100, prism_point.tput_mops,
                prism_point.abort_rate * 100);
  }
  return 0;
}
