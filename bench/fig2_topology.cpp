// Figure 2: indirect read latency vs network scale.
//
// Compares two chained RDMA READs (the only way to follow a pointer with
// the standard interface) against one PRISM indirect READ under the paper's
// three synthetic network tiers: rack (one ToR, 0.6 µs), cluster (three-tier
// network, 3 µs) and data center (reported RDMA latency, 24 µs).
//
// Paper shape: PRISM SW beats 2×RDMA at every tier — the deeper the
// network, the bigger the win — and even the BlueField wins once
// propagation dominates processing.
//
// Each (tier, deployment) cell is an independent simulation fanned out
// through the parallel sweep runner (--jobs=N).
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/obs/timeline.h"
#include "src/prism/service.h"
#include "src/rdma/service.h"

namespace prism {
namespace {

using core::Deployment;
using core::Op;
using sim::Task;
using sim::ToMicros;

constexpr uint64_t kValue = 512;

struct Tier {
  const char* name;
  net::CostModel model;
};

workload::LoadPoint PointOf(double us, const sim::Simulator& sim) {
  workload::LoadPoint p;
  p.clients = 1;
  p.mean_us = p.p50_us = p.p99_us = p.p999_us = us;
  p.sim_events = sim.executed_events();
  return p;
}

workload::LoadPoint MeasureRdma2Reads(const net::CostModel& model,
                                      obs::PointObs* pobs) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, model);
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  net::HostId server = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 21);
  auto region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
  mem.StoreWord(region.base, region.base + 1024);
  mem.Store(region.base + 1024, Bytes(kValue, 1));
  rdma::RdmaService service(&fabric, server, rdma::Backend::kHardwareNic,
                            &mem);
  rdma::RdmaClient client(&fabric, client_host);
  double us = 0;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim.Now();
    const obs::SpanId span =
        fabric.obs().StartSpan("rdma.2reads", "app", client_host, sim.Now());
    // Closed-loop phase timeline: born directly in app (no backlog), armed
    // on the hub so the transport's handoff points stamp it.
    obs::OpTimeline* op = nullptr;
    if (pobs != nullptr && pobs->timelines != nullptr) {
      obs::TimelineStore* st = pobs->timelines;
      op = st->StartOp(st->EnsureClass("rdma.2reads"), sim.Now());
      op->Switch(obs::Phase::kApp, sim.Now());
      op->set_root_span(span);
      fabric.obs().SetCurrentOp(op);
    }
    auto p = co_await client.Read(&service, region.rkey, region.base, 8);
    PRISM_CHECK(p.ok());
    auto r = co_await client.Read(&service, region.rkey, LoadU64(p->data()),
                                  kValue);
    PRISM_CHECK(r.ok());
    fabric.obs().FinishSpan(span, sim.Now());
    if (op != nullptr) {
      fabric.obs().SetCurrentOp(nullptr);
      pobs->timelines->FinishOp(op, sim.Now());
    }
    fabric.obs().ops().Record("rdma.2reads", client.tally());
    us = ToMicros(sim.Now() - start);
  });
  sim.Run();
  workload::LoadPoint pt = PointOf(us, sim);
  pt.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return pt;
}

workload::LoadPoint MeasurePrismIndirect(const net::CostModel& model,
                                         Deployment deployment,
                                         obs::PointObs* pobs) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, model);
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 21);
  core::PrismServer server(&fabric, server_host, deployment, &mem);
  auto region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
  mem.StoreWord(region.base, region.base + 1024);
  mem.Store(region.base + 1024, Bytes(kValue, 1));
  core::PrismClient client(&fabric, client_host);
  double us = 0;
  sim::Spawn([&]() -> Task<void> {
    sim::TimePoint start = sim.Now();
    const obs::SpanId span = fabric.obs().StartSpan(
        "prism.indirect_read", "app", client_host, sim.Now());
    obs::OpTimeline* op = nullptr;
    if (pobs != nullptr && pobs->timelines != nullptr) {
      obs::TimelineStore* st = pobs->timelines;
      op = st->StartOp(st->EnsureClass("prism.indirect_read"), sim.Now());
      op->Switch(obs::Phase::kApp, sim.Now());
      op->set_root_span(span);
      fabric.obs().SetCurrentOp(op);
    }
    auto r = co_await client.ExecuteOne(
        &server, Op::IndirectRead(region.rkey, region.base, kValue));
    PRISM_CHECK(r.ok());
    PRISM_CHECK(r->status.ok());
    fabric.obs().FinishSpan(span, sim.Now());
    if (op != nullptr) {
      fabric.obs().SetCurrentOp(nullptr);
      pobs->timelines->FinishOp(op, sim.Now());
    }
    fabric.obs().ops().Record("prism.indirect_read", client.tally());
    us = ToMicros(sim.Now() - start);
  });
  sim.Run();
  workload::LoadPoint pt = PointOf(us, sim);
  pt.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return pt;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  using namespace prism;
  Tier tiers[] = {
      {"Rack (ToR, +0.6us)", net::CostModel::RackScale()},
      {"Cluster (3-tier, +3us)", net::CostModel::ClusterScale()},
      {"Data Center (+24us)", net::CostModel::DataCenterScale()},
  };
  const bench::ObsOptions obs_opts = bench::ObsFromArgs(argc, argv);
  bench::ObsRig rig(obs_opts, 12);
  std::vector<bench::SweepCell> cells;
  size_t slot = 0;
  for (size_t t = 0; t < 3; ++t) {
    const net::CostModel model = tiers[t].model;
    const double x = static_cast<double>(t);
    obs::PointObs* po_rdma = rig.at(slot++);
    cells.push_back(
        {"2x RDMA", [=] { return MeasureRdma2Reads(model, po_rdma); }, x});
    obs::PointObs* po_sw = rig.at(slot++);
    cells.push_back({"PRISM SW", [=] {
                       return MeasurePrismIndirect(
                           model, core::Deployment::kSoftware, po_sw);
                     },
                     x});
    obs::PointObs* po_bf = rig.at(slot++);
    cells.push_back({"PRISM BlueField", [=] {
                       return MeasurePrismIndirect(
                           model, core::Deployment::kBlueField, po_bf);
                     },
                     x});
    obs::PointObs* po_hw = rig.at(slot++);
    cells.push_back({"PRISM HW proj", [=] {
                       return MeasurePrismIndirect(
                           model, core::Deployment::kHardwareProjected,
                           po_hw);
                     },
                     x});
  }
  bench::FigureReporter reporter(
      "fig2_topology", "Figure 2: indirect read latency vs network scale");
  std::vector<workload::LoadPoint> rows = bench::RunFigureSweep(
      reporter, cells, harness::JobsFromArgs(argc, argv));
  std::printf(
      "== Figure 2: indirect read latency vs network scale (512 B) ==\n");
  std::printf("%-26s %12s %14s %18s %20s\n", "tier", "2x RDMA(us)",
              "PRISM SW(us)", "PRISM BlueField(us)", "PRISM HW proj(us)");
  for (size_t t = 0; t < 3; ++t) {
    std::printf("%-26s %12.1f %14.1f %18.1f %20.1f\n", tiers[t].name,
                rows[4 * t].mean_us, rows[4 * t + 1].mean_us,
                rows[4 * t + 2].mean_us, rows[4 * t + 3].mean_us);
  }
  reporter.WriteUnified();
  rig.Finish("fig2_topology", cells);
  return 0;
}
