// Ablation A2: the intentionally simple ALLOCATE free-list design (§3.2).
//
// Power-of-two size-classed queues bound internal fragmentation to 2×.
// This bench measures (a) the actual space overhead across a realistic
// value-size distribution and (b) RNR (empty-queue NACK) behaviour when a
// class is under-provisioned.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/prism/executor.h"
#include "src/prism/freelist.h"
#include "src/rdma/memory.h"

int main() {
  using namespace prism;
  core::FreeListRegistry freelists;
  rdma::AddressSpace mem(64u << 20);
  // Power-of-two classes 64 B .. 8 KiB, 2048 buffers each.
  std::vector<uint32_t> queues;
  std::vector<uint64_t> sizes;
  for (uint64_t size = 64; size <= 8192; size *= 2) {
    uint32_t q = freelists.CreateQueue(size);
    queues.push_back(q);
    sizes.push_back(size);
    for (int i = 0; i < 2048; ++i) {
      freelists.Post(q, *mem.Carve(size));
    }
  }

  std::printf("== Ablation A2: power-of-two free lists (§3.2) ==\n");
  // (a) space overhead over a mixed value-size distribution.
  Rng rng(7);
  uint64_t requested = 0, allocated = 0;
  int failures = 0;
  for (int i = 0; i < 8000; ++i) {
    // Log-uniform sizes in [16, 8192] — a typical KV value mix.
    double log_size = 4.0 + rng.NextDouble() * 9.0;
    uint64_t need = static_cast<uint64_t>(1) << static_cast<int>(log_size);
    need += rng.NextBelow(need);
    if (need > 8192) need = 8192;
    auto q = freelists.QueueFor(need);
    if (!q.ok()) {
      failures++;
      continue;
    }
    auto buf = freelists.Pop(*q, need);
    if (!buf.ok()) {
      failures++;
      continue;
    }
    requested += need;
    allocated += freelists.buffer_size(*q);
  }
  std::printf("space overhead: requested %.1f MiB, allocated %.1f MiB -> "
              "%.2fx (bound: 2x)\n",
              requested / 1048576.0, allocated / 1048576.0,
              static_cast<double>(allocated) / static_cast<double>(requested));
  std::printf("allocation failures: %d\n", failures);

  // (b) RNR behaviour when one class runs dry.
  core::FreeListRegistry tight;
  uint32_t q = tight.CreateQueue(512);
  rdma::Addr buf_base = *mem.Carve(512 * 4);
  for (int i = 0; i < 4; ++i) tight.Post(q, buf_base + i * 512u);
  int ok = 0, rnr = 0;
  for (int i = 0; i < 10; ++i) {
    if (tight.Pop(q, 256).ok()) {
      ok++;
    } else {
      rnr++;
    }
  }
  std::printf("under-provisioned queue: %d pops served, %d RNR NACKs "
              "(empty_nacks counter: %llu)\n",
              ok, rnr, static_cast<unsigned long long>(tight.empty_nacks()));
  return 0;
}
