// Figure 4: PRISM-KV vs Pilaf, throughput vs average latency, 50% reads /
// 50% writes (YCSB-A), uniform key distribution, 512 B values.
//
// Paper shape: Pilaf PUTs are one RPC (~6 µs) while PRISM-KV PUTs take two
// round trips (~12 µs), so the latency gap narrows vs Figure 3; PRISM-KV
// still matches or beats Pilaf's hardware variant overall and handily beats
// the software-RDMA variant.
#include "bench/kv_bench_lib.h"
#include "src/harness/sweep.h"

int main(int argc, char** argv) {
  prism::bench::RunKvFigure(
      "fig4_kv_mixed",
      "Figure 4: KV store, 50% reads / 50% writes, uniform (YCSB-A)",
      /*read_frac=*/0.5, prism::harness::JobsFromArgs(argc, argv),
      prism::bench::ObsFromArgs(argc, argv));
  return 0;
}
