// Consensus-vs-ABD figure (no paper counterpart; ISSUE 10): the
// permission-guarded consensus log (src/consensus, Protected Memory Paxos
// style) against the lock-based ABD replicated store (src/rs ABD-LOCK)
// under identical open-loop load, plus a failover-latency CDF where leader
// change is an rkey revocation (Deregister + Register on a quorum).
//
// Methodology: both stores run 3 replicas and serve a 50/50 put/get mix
// over the same 16-key space with 16-byte values, driven by the same
// Poisson arrival process. The consensus leader is elected once during
// warmup and holds grants on all replicas for the whole measured window,
// so every put is exactly one PRISM chain per remote replica (CAS the slot
// header + conditional payload + piggybacked commit) and every get one
// heartbeat-confirm chain per remote — 2 round trips per op at n=3, and
// the accountant below asserts that EXACTLY (whole-run transport tally
// over whole-run completions). ABD-LOCK pays lock/read/write/unlock
// sequential round trips per op. The failover series drives repeated
// elections through the open-loop pool: each op revokes the incumbent's
// rkeys on a quorum and re-grants fresh ones, so the latency distribution
// IS the rkey-revocation failure-detector handoff time, catch-up included.
//
// Acceptance (PRISM_CHECKed, enforced by bench_smoke): consensus commits
// at exactly 2.0 round trips/op for both classes at the top offered rate,
// strictly below ABD-LOCK's profile; every measured failover succeeds and
// revokes on at least a quorum of replicas.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/common/histogram.h"
#include "src/consensus/consensus.h"
#include "src/harness/sweep.h"
#include "src/rs/abd_lock.h"
#include "src/workload/arrival.h"
#include "src/workload/open_loop.h"

namespace prism::bench {
namespace {

constexpr double kPutFrac = 0.5;
constexpr uint64_t kConsKeys = 16;
constexpr int kConsReplicas = 3;
// Entries committed before the failover series starts: one full catch-up
// batch (kMaxCatchupEntries), so elections adopt a real log suffix.
constexpr uint64_t kFailoverSeedEntries = 32;

struct PointCfg {
  double offered_mops = 0.02;
  uint64_t n_clients = 0;
  BenchWindows windows;
  uint64_t seed = 1;
};

uint64_t DefaultClients() { return FastMode() ? 10'000 : 100'000; }

std::vector<double> OfferedSweepMops() {
  // The consensus leader serializes commits (the mutex is held across the
  // chain round trip), so the sweep tops out near half the leader's serial
  // capacity — a load figure, not an overload figure.
  if (FastMode()) return {0.02, 0.12};
  return {0.02, 0.05, 0.12};
}

std::vector<double> FailoverSweepMops() {
  if (FastMode()) return {0.01};
  return {0.005, 0.01};
}

// ---- PMP-consensus under open-loop load ----

workload::LoadPoint RunConsensusPoint(const PointCfg& cfg,
                                      obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  std::vector<net::HostId> hosts;
  for (int r = 0; r < kConsReplicas; ++r) {
    hosts.push_back(fabric.AddHost("cons-r" + std::to_string(r)));
  }
  consensus::ConsensusCluster cluster(&fabric, hosts,
                                      consensus::ConsensusOptions{});
  // One session per op class so the complexity tally is per-class exact;
  // the seeding session keeps warmup prefill off the measured books.
  consensus::ConsensusSession put_session(&cluster);
  consensus::ConsensusSession get_session(&cluster);
  consensus::ConsensusSession seed_session(&cluster);

  const sim::TimePoint measure_start = sim.Now() + cfg.windows.warmup;
  const sim::TimePoint end = measure_start + cfg.windows.measure;
  workload::PoolOptions popts;
  popts.workers = 16;
  workload::OpenLoopPool pool(&sim,
                              workload::ArrivalSpec::Poisson(
                                  cfg.offered_mops * 1e6),
                              cfg.n_clients, Rng(cfg.seed), popts);
  if (pobs != nullptr && pobs->timelines != nullptr) {
    pool.set_timelines(pobs->timelines, &fabric.obs(), hosts[0]);
  }
  pool.AddClass(
      "cons.put", kPutFrac,
      [&](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
        const uint64_t key = 1 + draw % kConsKeys;
        auto put = co_await put_session.PutOn(
            0, key,
            consensus::MakeValue(cfg.seed, static_cast<int>(draw % 251),
                                 static_cast<int>(draw % 241)),
            op);
        PRISM_CHECK(put.status.ok())
            << put.status << " key=" << key
            << " offered=" << cfg.offered_mops;
      });
  pool.AddClass(
      "cons.get", 1.0 - kPutFrac,
      [&](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
        const uint64_t key = 1 + draw % kConsKeys;
        auto v = co_await get_session.GetOn(0, key, op);
        PRISM_CHECK(v.ok()) << v.status() << " key=" << key
                            << " offered=" << cfg.offered_mops;
      });
  // Elect + prefill during warmup, then open the arrival tap: every pool op
  // runs against a stable fully-granted leader, so gets never miss and the
  // 2-RT accountant below is exact (no election traffic on the sessions, no
  // re-grant probes — those only fire when a replica is missing).
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> sim::Task<void> {
        auto won = co_await cluster.Failover(0, nullptr);
        PRISM_CHECK(won.ok()) << won.status();
        for (uint64_t k = 1; k <= kConsKeys; ++k) {
          auto put = co_await seed_session.PutOn(
              0, k, consensus::MakeValue(cfg.seed, 0, static_cast<int>(k)),
              nullptr);
          PRISM_CHECK(put.status.ok()) << put.status;
        }
        PRISM_CHECK_EQ(cluster.node(0).granted_count(), kConsReplicas);
        PRISM_CHECK_LT(sim.Now(), measure_start)
            << "warmup too short for election + prefill";
        pool.Start(measure_start, end);
      },
      &tracker);
  sim.RunUntil(end + sim::Millis(20));  // drain the backlog tail
  sim.Run();
  pool.CheckDrained();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "consensus warmup driver hung";
  PRISM_CHECK_EQ(cluster.tracker().live(), 0u) << "protocol tasks hung";
  PRISM_CHECK_EQ(cluster.node(0).granted_count(), kConsReplicas)
      << "leader lost a grant mid-run";

  LatencyHistogram all;
  fabric.obs().ops().RecordN("cons.put", pool.class_completions(0),
                             put_session.tally());
  fabric.obs().ops().RecordN("cons.get", pool.class_completions(1),
                             get_session.tally());
  all.Merge(pool.recorder(0).hist());
  all.Merge(pool.recorder(1).hist());

  const double seconds = sim::ToSeconds(end - measure_start);
  workload::LoadPoint p;
  p.clients = static_cast<int>(pool.n_clients());
  const auto s = all.Summarize();
  p.tput_mops = static_cast<double>(s.count) / seconds / 1e6;
  p.offered_mops =
      static_cast<double>(pool.measured_arrivals()) / seconds / 1e6;
  p.mean_us = s.mean_us;
  p.p50_us = s.p50_us;
  p.p99_us = s.p99_us;
  p.p999_us = s.p999_us;
  p.sim_events = sim.executed_events();
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

// ---- ABD-LOCK baseline under the same load ----

workload::LoadPoint RunAbdPoint(const PointCfg& cfg,
                                obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  rs::AbdLockOptions aopts;
  aopts.n_blocks = kConsKeys;
  aopts.block_size = consensus::kValueSize;  // identical payloads
  rs::AbdLockCluster cluster(&fabric, kConsReplicas, aopts);
  auto client_hosts = AddClientHosts(fabric);
  const size_t n_hosts = client_hosts.size();
  struct HostRig {
    std::unique_ptr<rs::AbdLockClient> writer;
    std::unique_ptr<rs::AbdLockClient> reader;
    std::unique_ptr<workload::OpenLoopPool> pool;
  };
  std::vector<HostRig> rigs(n_hosts);
  const sim::TimePoint measure_start = sim.Now() + cfg.windows.warmup;
  const sim::TimePoint end = measure_start + cfg.windows.measure;
  Rng master(cfg.seed);
  const double rate_per_host =
      cfg.offered_mops * 1e6 / static_cast<double>(n_hosts);
  uint64_t remaining = cfg.n_clients;
  for (size_t h = 0; h < n_hosts; ++h) {
    HostRig& rig = rigs[h];
    // Distinct nonzero lock-owner ids per (host, role) — pool workers share
    // a client's id, which the lock words treat as a conflict, never as
    // re-entry.
    rig.writer = std::make_unique<rs::AbdLockClient>(
        &fabric, client_hosts[h], &cluster,
        static_cast<uint16_t>(2 * h + 1), cfg.seed * 131 + 2 * h + 1);
    rig.reader = std::make_unique<rs::AbdLockClient>(
        &fabric, client_hosts[h], &cluster,
        static_cast<uint16_t>(2 * h + 2), cfg.seed * 131 + 2 * h + 2);
    const uint64_t n_here = remaining / (n_hosts - h);
    remaining -= n_here;
    workload::PoolOptions popts;
    popts.workers = 16;
    rig.pool = std::make_unique<workload::OpenLoopPool>(
        &sim, workload::ArrivalSpec::Poisson(rate_per_host), n_here,
        master.Fork(), popts);
    if (pobs != nullptr && pobs->timelines != nullptr) {
      rig.pool->set_timelines(pobs->timelines, &fabric.obs(), client_hosts[h]);
    }
    rs::AbdLockClient* wr = rig.writer.get();
    rs::AbdLockClient* rd = rig.reader.get();
    // kAborted means max_lock_attempts lost races — uniform keys keep that
    // rare, but under open-loop bursts it can happen; retry with a fresh
    // budget so the convoy cost lands in the tail, as in fig_sync.
    rig.pool->AddClass(
        "abd.put", kPutFrac,
        [wr, cfg, &sim](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
          const uint64_t block = draw % kConsKeys;
          for (int attempt = 0;; ++attempt) {
            Status s = co_await wr->Put(
                block, Bytes(consensus::kValueSize, 0x5A));
            if (s.ok()) break;
            PRISM_CHECK(attempt < 100 && s.code() == Code::kAborted)
                << s << " block=" << block << " offered=" << cfg.offered_mops;
            obs::SwitchOp(op, obs::Phase::kSyncSpin, sim.Now());
            co_await sim::SleepFor(&sim, sim::Micros(20));
            obs::SwitchOp(op, obs::Phase::kApp, sim.Now());
          }
        });
    rig.pool->AddClass(
        "abd.get", 1.0 - kPutFrac,
        [rd, cfg, &sim](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
          const uint64_t block = draw % kConsKeys;
          for (int attempt = 0;; ++attempt) {
            auto v = co_await rd->Get(block);
            if (v.ok()) break;
            PRISM_CHECK(attempt < 100 && v.status().code() == Code::kAborted)
                << v.status() << " block=" << block
                << " offered=" << cfg.offered_mops;
            obs::SwitchOp(op, obs::Phase::kSyncSpin, sim.Now());
            co_await sim::SleepFor(&sim, sim::Micros(20));
            obs::SwitchOp(op, obs::Phase::kApp, sim.Now());
          }
        });
    rig.pool->Start(measure_start, end);
  }
  sim.RunUntil(end + sim::Millis(20));
  sim.Run();

  LatencyHistogram all;
  for (size_t c = 0; c < 2; ++c) {
    LatencyHistogram cls_hist;
    obs::TransportTally tally;
    uint64_t n_ops = 0;
    for (HostRig& rig : rigs) {
      cls_hist.Merge(rig.pool->recorder(c).hist());
      n_ops += rig.pool->class_completions(c);
      rs::AbdLockClient* cl = c == 0 ? rig.writer.get() : rig.reader.get();
      tally += cl->TransportTally();
    }
    fabric.obs().ops().RecordN(rigs[0].pool->class_name(c), n_ops, tally);
    all.Merge(cls_hist);
  }
  uint64_t measured_arrivals = 0;
  uint64_t total_clients = 0;
  for (HostRig& rig : rigs) {
    rig.pool->CheckDrained();
    measured_arrivals += rig.pool->measured_arrivals();
    total_clients += rig.pool->n_clients();
  }

  const double seconds = sim::ToSeconds(end - measure_start);
  workload::LoadPoint p;
  p.clients = static_cast<int>(total_clients);
  const auto s = all.Summarize();
  p.tput_mops = static_cast<double>(s.count) / seconds / 1e6;
  p.offered_mops = static_cast<double>(measured_arrivals) / seconds / 1e6;
  p.mean_us = s.mean_us;
  p.p50_us = s.p50_us;
  p.p99_us = s.p99_us;
  p.p999_us = s.p999_us;
  p.sim_events = sim.executed_events();
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

// ---- failover latency: leader change as rkey revocation ----

workload::LoadPoint RunFailoverPoint(const PointCfg& cfg,
                                     obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  std::vector<net::HostId> hosts;
  for (int r = 0; r < kConsReplicas; ++r) {
    hosts.push_back(fabric.AddHost("cons-r" + std::to_string(r)));
  }
  consensus::ConsensusCluster cluster(&fabric, hosts,
                                      consensus::ConsensusOptions{});
  consensus::ConsensusSession seed_session(&cluster);

  const sim::TimePoint measure_start = sim.Now() + cfg.windows.warmup;
  // Elections are ~100× rarer than data ops, so this series stretches the
  // measured window to collect a real distribution per point.
  const sim::TimePoint end = measure_start + 3 * cfg.windows.measure;
  workload::PoolOptions popts;
  popts.workers = 1;  // elections serialize on the cluster anyway
  workload::OpenLoopPool pool(&sim,
                              workload::ArrivalSpec::Poisson(
                                  cfg.offered_mops * 1e6),
                              64, Rng(cfg.seed), popts);
  if (pobs != nullptr && pobs->timelines != nullptr) {
    pool.set_timelines(pobs->timelines, &fabric.obs(), hosts[0]);
  }
  pool.AddClass(
      "cons.failover", 1.0,
      [&](uint64_t draw, obs::OpTimeline* op) -> sim::Task<void> {
        const int candidate = static_cast<int>(draw % kConsReplicas);
        auto won = co_await cluster.Failover(candidate, op);
        PRISM_CHECK(won.ok()) << won.status() << " candidate=" << candidate;
      });
  // Seed one full catch-up batch of committed entries before the measured
  // elections, so every first-time candidate adopts a real log suffix.
  obs::TransportTally control_before;
  sim::TaskTracker tracker;
  sim::Spawn(
      [&]() -> sim::Task<void> {
        auto won = co_await cluster.Failover(0, nullptr);
        PRISM_CHECK(won.ok()) << won.status();
        for (uint64_t k = 1; k <= kFailoverSeedEntries; ++k) {
          auto put = co_await seed_session.PutOn(
              0, k, consensus::MakeValue(cfg.seed, 0, static_cast<int>(k)),
              nullptr);
          PRISM_CHECK(put.status.ok()) << put.status;
        }
        PRISM_CHECK_LT(sim.Now(), measure_start)
            << "warmup too short for election + log seeding";
        for (int i = 0; i < kConsReplicas; ++i) {
          control_before += cluster.node(i).control_tally();
        }
        pool.Start(measure_start, end);
      },
      &tracker);
  sim.RunUntil(end + sim::Millis(20));
  sim.Run();
  pool.CheckDrained();
  PRISM_CHECK_EQ(tracker.live(), 0u) << "failover seeding driver hung";
  PRISM_CHECK_EQ(cluster.tracker().live(), 0u) << "protocol tasks hung";

  const uint64_t n_failovers = pool.class_completions(0);
  PRISM_CHECK_GT(n_failovers, 0u) << "no failovers measured";
  // Every election revokes the incumbent's rkey on at least a quorum —
  // that IS the failure detector.
  uint64_t revocations = 0;
  for (int r = 0; r < kConsReplicas; ++r) {
    revocations += cluster.replica(r).revocations();
  }
  PRISM_CHECK_GE(revocations,
                 (n_failovers + 1) * static_cast<uint64_t>(cluster.quorum()))
      << "elections must revoke on a quorum";
  obs::TransportTally control;
  for (int i = 0; i < kConsReplicas; ++i) {
    control += cluster.node(i).control_tally();
  }
  fabric.obs().ops().RecordN("cons.failover", n_failovers,
                             control - control_before);

  const double seconds = sim::ToSeconds(end - measure_start);
  workload::LoadPoint p;
  p.clients = static_cast<int>(pool.n_clients());
  const auto s = pool.recorder(0).hist().Summarize();
  p.tput_mops = static_cast<double>(s.count) / seconds / 1e6;
  p.offered_mops =
      static_cast<double>(pool.measured_arrivals()) / seconds / 1e6;
  p.mean_us = s.mean_us;
  p.p50_us = s.p50_us;
  p.p99_us = s.p99_us;
  p.p999_us = s.p999_us;
  p.sim_events = sim.executed_events();
  p.ops = fabric.obs().ops().Collect();
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

double RtPerOp(const workload::LoadPoint& p, const std::string& op) {
  for (const obs::OpStats& os : p.ops) {
    if (os.op == op && os.count > 0) {
      return static_cast<double>(os.totals.round_trips) /
             static_cast<double>(os.count);
    }
  }
  PRISM_CHECK(false) << "no complexity row for " << op;
  return 0;
}

int Main(int argc, char** argv) {
  using workload::PrintHeader;
  using workload::PrintRow;
  const int jobs = harness::JobsFromArgs(argc, argv);
  const ObsOptions obs_opts = ObsFromArgs(argc, argv);
  const BenchWindows windows = BenchWindows::Default();
  const uint64_t n_clients = DefaultClients();
  const std::vector<double> sweep = OfferedSweepMops();
  const std::vector<double> fo_sweep = FailoverSweepMops();

  ObsRig rig(obs_opts, 2 * sweep.size() + fo_sweep.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (size_t li = 0; li < sweep.size(); ++li) {
    PointCfg cfg{sweep[li], n_clients, windows, 1000 + li};
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"PMP-consensus",
                     [cfg, po] { return RunConsensusPoint(cfg, po); },
                     sweep[li]});
  }
  for (size_t li = 0; li < sweep.size(); ++li) {
    PointCfg cfg{sweep[li], n_clients, windows, 2000 + li};
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"ABD-LOCK",
                     [cfg, po] { return RunAbdPoint(cfg, po); },
                     sweep[li]});
  }
  for (size_t li = 0; li < fo_sweep.size(); ++li) {
    PointCfg cfg{fo_sweep[li], 64, windows, 3000 + li};
    obs::PointObs* po = rig.at(slot++);
    cells.push_back({"failover",
                     [cfg, po] { return RunFailoverPoint(cfg, po); },
                     fo_sweep[li]});
  }
  const std::string title =
      "Permission-guarded consensus vs ABD-LOCK: open-loop 50% puts, "
      "n=3; leader change = rkey revocation";
  FigureReporter reporter("fig_consensus", title);
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  PrintHeader(title, "offered(Mops)  rt/put   rt/get");
  for (size_t i = 0; i < cells.size(); ++i) {
    char extra[64];
    if (cells[i].series == "failover") {
      std::snprintf(extra, sizeof(extra), "%10.4f  rt/failover %7.2f",
                    rows[i].offered_mops,
                    RtPerOp(rows[i], "cons.failover"));
    } else {
      const bool cons = cells[i].series == "PMP-consensus";
      std::snprintf(extra, sizeof(extra), "%10.3f  %7.2f  %7.2f",
                    rows[i].offered_mops,
                    RtPerOp(rows[i], cons ? "cons.put" : "abd.put"),
                    RtPerOp(rows[i], cons ? "cons.get" : "abd.get"));
    }
    PrintRow(cells[i].series, rows[i], extra);
  }
  reporter.WriteUnified();
  rig.Finish("fig_consensus", cells);

  // Acceptance at the top offered rate: the accountant-exact 2-RT commit
  // (one chain per remote replica, n=3), strictly below ABD-LOCK's
  // lock/read/write/unlock bill for both classes.
  const size_t top = sweep.size() - 1;
  const workload::LoadPoint& cons = rows[top];
  const workload::LoadPoint& abd = rows[sweep.size() + top];
  for (const char* cls : {"put", "get"}) {
    const double rt_cons = RtPerOp(cons, std::string("cons.") + cls);
    const double rt_abd = RtPerOp(abd, std::string("abd.") + cls);
    PRISM_CHECK(std::fabs(rt_cons - 2.0) < 1e-9)
        << "cons." << cls << " must commit in exactly 2 round trips at n=3, "
        << "got " << rt_cons;
    PRISM_CHECK_LT(rt_cons, rt_abd)
        << cls << ": consensus chains should beat ABD-LOCK round trips";
    std::printf("consensus-assert %-4s rt/op consensus %.3f abd %.3f\n", cls,
                rt_cons, rt_abd);
  }
  const workload::LoadPoint& fo = rows[2 * sweep.size() + fo_sweep.size() - 1];
  PRISM_CHECK_GT(fo.p50_us, 0.0) << "empty failover distribution";
  std::printf(
      "consensus-assert failover p50 %.1fus p99 %.1fus rt/failover %.2f\n",
      fo.p50_us, fo.p99_us, RtPerOp(fo, "cons.failover"));
  return 0;
}

}  // namespace
}  // namespace prism::bench

int main(int argc, char** argv) { return prism::bench::Main(argc, argv); }
