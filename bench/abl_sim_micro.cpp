// Ablation A6: microbenchmarks of the simulation substrate itself
// (google-benchmark, real wall-clock time). Documents the event-queue and
// coroutine costs that bound how big a simulated experiment can be.
//
// Besides the google-benchmark suite, main() runs three fixed-size
// throughput probes over the engine's lanes — zero-delay FIFO ring,
// calendar-queue timers, and a mixed workload — and emits the results as
// results/BENCH_sim.json (events/sec, wall seconds, simulated time, and the
// engine's lane/allocation counters) for machine consumption.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/workload/zipf.h"

namespace prism {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.Schedule(i % 97, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

// The zero-delay ring lane: a self-sustaining cascade of Schedule(0) events,
// the shape of every Resume/Set/Push wakeup in the simulator.
void BM_ZeroDelayCascade(benchmark::State& state) {
  struct Chain {
    sim::Simulator* sim;
    int remaining;
    void operator()() {
      if (--remaining > 0) sim->Schedule(0, Chain{sim, remaining});
    }
  };
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 64; ++i) sim.Schedule(0, Chain{&sim, 256});
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 256);
}
BENCHMARK(BM_ZeroDelayCascade);

// Calendar-queue churn: a large pending set of timers, each rescheduling
// itself with a spread of delays (the steady state of a big simulation).
void BM_TimerWheelChurn(benchmark::State& state) {
  struct Timer {
    sim::Simulator* sim;
    uint64_t salt;
    int remaining;
    void operator()() {
      if (--remaining > 0) {
        salt = salt * 6364136223846793005ull + 1442695040888963407ull;
        sim->Schedule(1 + (salt >> 33) % 200'000, Timer{sim, salt, remaining});
      }
    }
  };
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 4096; ++i) {
      sim.Schedule(i % 997, Timer{&sim, 0x9E3779B9u * (i + 1), 8});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 4096 * 8);
}
BENCHMARK(BM_TimerWheelChurn);

void BM_CoroutineSpawnResume(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int done = 0;
    for (int i = 0; i < 256; ++i) {
      sim::Spawn([&sim, &done]() -> sim::Task<void> {
        co_await sim::SleepFor(&sim, 10);
        co_await sim::SleepFor(&sim, 10);
        done++;
      });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 256 * 2);
}
BENCHMARK(BM_CoroutineSpawnResume);

void BM_ServiceQueueContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::ServiceQueue cores(&sim, 16);
    for (int i = 0; i < 512; ++i) {
      sim::Spawn([&]() -> sim::Task<void> { co_await cores.Use(100); });
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ServiceQueueContention);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfGenerator zipf(1u << 20, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_ZipfSampleHighTheta(benchmark::State& state) {
  workload::ZipfGenerator zipf(1u << 16, 1.4);  // CDF-table path
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampleHighTheta);

// ---- JSON throughput probes ----------------------------------------------

struct ProbeResult {
  uint64_t events = 0;
  double wall_seconds = 0;
  sim::TimePoint simulated_ns = 0;
  sim::Simulator::Stats stats;
};

template <typename Setup>
ProbeResult RunProbe(Setup setup) {
  sim::Simulator sim;
  setup(sim);
  const auto t0 = std::chrono::steady_clock::now();
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  ProbeResult r;
  r.events = sim.executed_events();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.simulated_ns = sim.Now();
  r.stats = sim.stats();
  return r;
}

void EmitProbe(bench::JsonWriter& json, const char* name,
               const ProbeResult& r) {
  const double rate = r.wall_seconds > 0 ? r.events / r.wall_seconds : 0;
  json.BeginObject(name)
      .Field("events", r.events)
      .Field("wall_seconds", r.wall_seconds)
      .Field("events_per_sec", rate)
      .Field("simulated_ns", static_cast<uint64_t>(r.simulated_ns))
      .BeginObject("engine_stats")
      .Field("zero_delay_events", r.stats.zero_delay_events)
      .Field("timer_events", r.stats.timer_events)
      .Field("overflow_events", r.stats.overflow_events)
      .Field("heap_callables", r.stats.heap_callables)
      .Field("pool_blocks", r.stats.pool_blocks)
      .EndObject()
      .EndObject();
  std::printf("  %-12s %8.0f k events/s  (%llu events, %.3f s wall)\n", name,
              rate / 1e3, static_cast<unsigned long long>(r.events),
              r.wall_seconds);
}

void WriteSimThroughputJson() {
  const int scale = bench::FastMode() ? 1 : 8;

  // Zero-delay ring lane: 64 concurrent self-rescheduling cascades.
  ProbeResult zero = RunProbe([&](sim::Simulator& sim) {
    struct Chain {
      sim::Simulator* sim;
      int remaining;
      void operator()() {
        if (--remaining > 0) sim->Schedule(0, Chain{sim, remaining});
      }
    };
    for (int i = 0; i < 64; ++i) {
      sim.Schedule(0, Chain{&sim, 4000 * scale});
    }
  });

  // Calendar-queue lane: 50k concurrently pending self-rescheduling timers
  // with delays spread over ~200 µs (plus the occasional far-future hop that
  // lands in the overflow heap).
  ProbeResult timer = RunProbe([&](sim::Simulator& sim) {
    struct Timer {
      sim::Simulator* sim;
      uint64_t salt;
      int remaining;
      void operator()() {
        if (--remaining > 0) {
          salt = salt * 6364136223846793005ull + 1442695040888963407ull;
          const uint64_t draw = salt >> 33;
          const sim::Duration delay = (draw % 512 == 0)
                                          ? sim::Millis(2)  // overflow lane
                                          : 1 + draw % 200'000;
          sim->Schedule(delay, Timer{sim, salt, remaining});
        }
      }
    };
    for (int i = 0; i < 50'000; ++i) {
      sim.Schedule(i % 9973, Timer{&sim, 0x9E3779B9u * (i + 1), 5 * scale});
    }
  });

  // Mixed: coroutine wakeup traffic (ring) interleaved with sleep timers —
  // the shape of a real figure-reproduction run.
  ProbeResult mixed = RunProbe([&](sim::Simulator& sim) {
    struct Hop {
      sim::Simulator* sim;
      uint64_t salt;
      int remaining;
      void operator()() {
        if (--remaining > 0) {
          salt = salt * 6364136223846793005ull + 1442695040888963407ull;
          const sim::Duration delay =
              (salt >> 33) % 4 == 0 ? 1 + (salt >> 35) % 50'000 : 0;
          sim->Schedule(delay, Hop{sim, salt, remaining});
        }
      }
    };
    for (int i = 0; i < 2048; ++i) {
      sim.Schedule(i % 211, Hop{&sim, 0x517CC1B7u * (i + 1), 120 * scale});
    }
  });

  bench::JsonWriter json;
  json.BeginObject()
      .Field("bench", "abl_sim_micro")
      .Field("fast_mode", bench::FastMode());
  EmitProbe(json, "zero_delay", zero);
  EmitProbe(json, "timer_wheel", timer);
  EmitProbe(json, "mixed", mixed);
  json.EndObject();
  const char* path = "results/BENCH_sim.json";
  if (json.WriteFile(path)) {
    std::printf("wrote %s\n", path);
  }
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nengine throughput probes (results/BENCH_sim.json):\n");
  prism::WriteSimThroughputJson();
  return 0;
}
