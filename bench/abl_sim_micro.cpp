// Ablation A6: microbenchmarks of the simulation substrate itself
// (google-benchmark, real wall-clock time). Documents the event-queue and
// coroutine costs that bound how big a simulated experiment can be.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/workload/zipf.h"

namespace prism {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.Schedule(i % 97, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_CoroutineSpawnResume(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int done = 0;
    for (int i = 0; i < 256; ++i) {
      sim::Spawn([&sim, &done]() -> sim::Task<void> {
        co_await sim::SleepFor(&sim, 10);
        co_await sim::SleepFor(&sim, 10);
        done++;
      });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 256 * 2);
}
BENCHMARK(BM_CoroutineSpawnResume);

void BM_ServiceQueueContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::ServiceQueue cores(&sim, 16);
    for (int i = 0; i < 512; ++i) {
      sim::Spawn([&]() -> sim::Task<void> { co_await cores.Use(100); });
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ServiceQueueContention);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfGenerator zipf(1u << 20, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_ZipfSampleHighTheta(benchmark::State& state) {
  workload::ZipfGenerator zipf(1u << 16, 1.4);  // CDF-table path
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampleHighTheta);

}  // namespace
}  // namespace prism

BENCHMARK_MAIN();
