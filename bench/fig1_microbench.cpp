// Figure 1: microbenchmarks of the PRISM software implementation vs hardware
// RDMA, the BlueField deployment, and the projected hardware PRISM NIC.
// 512-byte values, two machines, direct 25 GbE link (no switch).
//
// Paper shape: RDMA ops ≈ 2.5 µs; PRISM SW ≈ +2.5–2.8 µs; PRISM HW (proj.)
// slightly above raw RDMA (extra PCIe round trips); BlueField slowest.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/prism/service.h"
#include "src/rdma/service.h"

namespace prism {
namespace {

using core::Chain;
using core::Deployment;
using core::Op;
using sim::Task;
using sim::ToMicros;

constexpr uint64_t kValue = 512;

struct Rig {
  sim::Simulator sim;
  net::Fabric fabric{&sim, net::CostModel::Fig1DirectTestbed()};
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem{1 << 22};
  rdma::RdmaService rdma_hw{&fabric, server_host,
                            rdma::Backend::kHardwareNic, &mem};
  core::PrismServer sw{&fabric, server_host, Deployment::kSoftware, &mem};
  core::PrismServer hw{&fabric, server_host, Deployment::kHardwareProjected,
                       &mem};
  core::PrismServer bf{&fabric, server_host, Deployment::kBlueField, &mem};
  rdma::RdmaClient rdma_client{&fabric, client_host};
  core::PrismClient prism_client{&fabric, client_host};
  rdma::MemoryRegion region;
  uint32_t freelist = 0;
  rdma::Addr scratch = 0;

  Rig() {
    region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
    // Shared free lists across deployments (each PrismServer has its own
    // registry; create one queue per server with identical buffers).
    for (core::PrismServer* s : {&sw, &hw, &bf}) {
      uint32_t q = s->freelists().CreateQueue(kValue + 64);
      PRISM_CHECK_EQ(q, 0u);
      for (int i = 0; i < 4096; ++i) {
        s->PostBuffers(q, {region.base + 65536 +
                           static_cast<uint64_t>(i) * (kValue + 64)});
      }
    }
    scratch = *sw.AllocateScratch(16);
    // An indirect-read target: pointer at region.base -> data at +1024.
    mem.StoreWord(region.base, region.base + 1024);
    mem.Store(region.base + 1024, Bytes(kValue, 0x5a));
  }

  // Measures mean completion time of `op()` over `iters` sequential issues.
  // (Completion is captured inside the coroutine: sim.Run() also drains the
  // 5 ms op-timeout guards, which must not count.)
  double Measure(const std::function<sim::Task<void>()>& op, int iters = 32) {
    double total = 0;
    for (int i = 0; i < iters; ++i) {
      sim::TimePoint begin = sim.Now();
      sim::TimePoint finished = -1;
      sim::Spawn([&]() -> Task<void> {
        co_await op();
        finished = sim.Now();
      });
      sim.Run();
      PRISM_CHECK_GE(finished, begin);
      total += ToMicros(finished - begin);
    }
    return total / iters;
  }
};

Chain IndirectReadChain(const Rig& rig) {
  return {Op::IndirectRead(rig.region.rkey, rig.region.base, kValue)};
}

Chain AllocateChain(const Rig& rig) {
  return {Op::Allocate(rig.region.rkey, 0, Bytes(kValue, 1))};
}

Chain EnhancedCasChain(const Rig& rig) {
  return {Op::MaskedCas(rig.region.rkey, rig.region.base + 2048,
                        BytesOfU64Pair(7, 9), FieldMask(16, 0, 8),
                        FieldMask(16, 8, 8), rdma::CasCompare::kGreater)};
}

}  // namespace
}  // namespace prism

int main() {
  using namespace prism;
  Rig rig;
  auto prism_op = [&](core::PrismServer* server, Chain chain) {
    return rig.Measure([&rig, server, chain]() -> sim::Task<void> {
      Chain c = chain;
      auto r = co_await rig.prism_client.Execute(server, std::move(c));
      PRISM_CHECK(r.ok());
    });
  };

  std::printf("== Figure 1: PRISM microbenchmarks (512 B, direct 25 GbE link) ==\n");
  std::printf("%-16s %10s %12s %14s %18s\n", "op", "RDMA(us)", "PRISM SW(us)",
              "BlueField(us)", "PRISM HW proj(us)");

  // READ / WRITE: hardware RDMA baseline vs PRISM deployments running the
  // equivalent single-op chain.
  double rdma_read = rig.Measure([&]() -> sim::Task<void> {
    auto r = co_await rig.rdma_client.Read(&rig.rdma_hw, rig.region.rkey,
                                           rig.region.base + 1024, kValue);
    PRISM_CHECK(r.ok());
  });
  Chain read_chain{core::Op::Read(rig.region.rkey, rig.region.base + 1024,
                                  kValue)};
  std::printf("%-16s %10.2f %12.2f %14.2f %18.2f\n", "Read", rdma_read,
              prism_op(&rig.sw, read_chain), prism_op(&rig.bf, read_chain),
              prism_op(&rig.hw, read_chain));

  double rdma_write = rig.Measure([&]() -> sim::Task<void> {
    Status s = co_await rig.rdma_client.Write(&rig.rdma_hw, rig.region.rkey,
                                              rig.region.base + 4096,
                                              Bytes(kValue, 2));
    PRISM_CHECK(s.ok());
  });
  Chain write_chain{core::Op::Write(rig.region.rkey, rig.region.base + 4096,
                                    Bytes(kValue, 2))};
  std::printf("%-16s %10.2f %12.2f %14.2f %18.2f\n", "Write", rdma_write,
              prism_op(&rig.sw, write_chain), prism_op(&rig.bf, write_chain),
              prism_op(&rig.hw, write_chain));

  // Indirect read: no hardware-RDMA equivalent in one round trip (that is
  // the point); the RDMA column reports the two-READ emulation.
  double rdma_2reads = rig.Measure([&]() -> sim::Task<void> {
    auto p = co_await rig.rdma_client.Read(&rig.rdma_hw, rig.region.rkey,
                                           rig.region.base, 8);
    PRISM_CHECK(p.ok());
    auto r = co_await rig.rdma_client.Read(&rig.rdma_hw, rig.region.rkey,
                                           LoadU64(p->data()), kValue);
    PRISM_CHECK(r.ok());
  });
  std::printf("%-16s %10.2f %12.2f %14.2f %18.2f   (RDMA = 2 READs)\n",
              "Indirect Read", rdma_2reads,
              prism_op(&rig.sw, IndirectReadChain(rig)),
              prism_op(&rig.bf, IndirectReadChain(rig)),
              prism_op(&rig.hw, IndirectReadChain(rig)));

  std::printf("%-16s %10s %12.2f %14.2f %18.2f\n", "Allocate", "-",
              prism_op(&rig.sw, AllocateChain(rig)),
              prism_op(&rig.bf, AllocateChain(rig)),
              prism_op(&rig.hw, AllocateChain(rig)));

  double rdma_cas = rig.Measure([&]() -> sim::Task<void> {
    auto r = co_await rig.rdma_client.CompareSwap(
        &rig.rdma_hw, rig.region.rkey, rig.region.base + 2048, 0, 0);
    PRISM_CHECK(r.ok());
  });
  std::printf("%-16s %10.2f %12.2f %14.2f %18.2f   (RDMA = 8B CAS)\n",
              "Enhanced-CAS", rdma_cas,
              prism_op(&rig.sw, EnhancedCasChain(rig)),
              prism_op(&rig.bf, EnhancedCasChain(rig)),
              prism_op(&rig.hw, EnhancedCasChain(rig)));
  return 0;
}
