// Ablation A3: redirect target placement (§4.2).
//
// Output redirection writes an op's result to memory instead of the wire.
// On a hardware PRISM NIC the target matters: on-NIC SRAM is ~0.1 µs while
// host memory costs a PCIe round trip per access. This bench measures the
// §3.5 allocate+redirect+CAS chain under the hardware projection with the
// temporary in each location — quantifying why the paper stresses the
// 256 KB on-NIC region.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/harness/sweep.h"
#include "src/prism/service.h"

namespace prism {
namespace {

using core::Chain;
using core::Op;
using sim::Task;
using sim::ToMicros;

struct Sample {
  double us = 0;
  uint64_t sim_events = 0;
};

Sample MeasureInstallChain(bool on_nic, core::Deployment deployment) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  net::HostId server_host = fabric.AddHost("server");
  net::HostId client_host = fabric.AddHost("client");
  rdma::AddressSpace mem(1 << 21);
  core::PrismServer server(&fabric, server_host, deployment, &mem);
  auto region = *mem.CarveAndRegister(1 << 20, rdma::kRemoteAll);
  uint32_t freelist = server.freelists().CreateQueue(576);
  for (int i = 0; i < 128; ++i) {
    server.PostBuffers(freelist, {region.base + 65536 +
                                  static_cast<uint64_t>(i) * 576});
  }
  rdma::Addr tmp =
      on_nic ? *server.AllocateScratch(16)
             : region.base + 4096;  // host-memory temporary
  core::PrismClient client(&fabric, client_host);
  double total = 0;
  const int iters = 16;
  for (int i = 0; i < iters; ++i) {
    double us = 0;
    sim::Spawn([&]() -> Task<void> {
      Chain chain;
      chain.push_back(Op::Write(region.rkey, tmp + 8, BytesOfU64(576)));
      chain.push_back(Op::Allocate(region.rkey, freelist, Bytes(520, 1))
                          .RedirectTo(tmp)
                          .Conditional());
      Op install;
      install.code = core::OpCode::kCas;
      install.rkey = region.rkey;
      install.addr = region.base + 128;
      install.data = BytesOfU64(tmp);
      install.data_indirect = true;
      install.cmp_mask = Bytes(16, 0x00);
      install.swap_mask = Bytes(16, 0xff);
      install.conditional = true;
      chain.push_back(std::move(install));
      sim::TimePoint start = sim.Now();
      auto r = co_await client.Execute(&server, std::move(chain));
      PRISM_CHECK(r.ok());
      us = ToMicros(sim.Now() - start);
    });
    sim.Run();
    total += us;
  }
  return Sample{total / iters, sim.executed_events()};
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) {
  using namespace prism;
  // Cell order: (HW on-nic, HW host, SW on-nic, SW host).
  std::vector<harness::SweepPoint<Sample>> points = {
      [] {
        return MeasureInstallChain(true,
                                   core::Deployment::kHardwareProjected);
      },
      [] {
        return MeasureInstallChain(false,
                                   core::Deployment::kHardwareProjected);
      },
      [] { return MeasureInstallChain(true, core::Deployment::kSoftware); },
      [] { return MeasureInstallChain(false, core::Deployment::kSoftware); },
  };
  const int jobs = harness::JobsFromArgs(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Sample> rows =
      harness::RunSweep(points, harness::SweepOptions{jobs});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("== Ablation A3: redirect temporary on-NIC vs in host memory "
              "(§4.2) ==\n");
  std::printf("%-22s %18s %22s\n", "deployment", "on-NIC scratch(us)",
              "host-memory scratch(us)");
  std::printf("%-22s %18.2f %22.2f   <- extra PCIe RTTs\n",
              "PRISM HW (projected)", rows[0].us, rows[1].us);
  std::printf("%-22s %18.2f %22.2f   (software: CPU reaches both equally)\n",
              "PRISM SW", rows[2].us, rows[3].us);
  bench::FigureReporter reporter(
      "abl_redirect", "Ablation A3: redirect target placement");
  const char* series[] = {"HW on-nic", "HW host", "SW on-nic", "SW host"};
  for (size_t i = 0; i < rows.size(); ++i) {
    workload::LoadPoint p;
    p.clients = 1;
    p.mean_us = rows[i].us;
    p.sim_events = rows[i].sim_events;
    reporter.AddRow(series[i], p);
  }
  reporter.SetSweepMetrics(wall, jobs);
  reporter.WriteUnified();
  return 0;
}
