// Shared scaffolding for the figure-reproduction benchmarks.
//
// Methodology (matching §5): closed-loop clients spread across up to 11
// client hosts (the paper's machine count), a warmup window discarded, and
// a measurement window over which completions and latencies are recorded.
// Sweeping the client count traces the throughput–latency curves.
//
// Scale substitution (see DESIGN.md §1): object count is reduced from the
// paper's 8 M to a simulation-friendly number via --keys; access
// distributions and object sizes are identical. Env var PRISM_BENCH_FAST=1
// shrinks windows further for smoke runs.
#ifndef PRISM_BENCH_BENCH_COMMON_H_
#define PRISM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/workload/driver.h"
#include "src/workload/zipf.h"

namespace prism::bench {

inline bool FastMode() {
  const char* v = std::getenv("PRISM_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

struct BenchWindows {
  sim::Duration warmup = sim::Millis(0.5);
  sim::Duration measure = sim::Millis(3.0);

  static BenchWindows Default() {
    BenchWindows w;
    if (FastMode()) {
      w.warmup = sim::Millis(0.2);
      w.measure = sim::Millis(1.0);
    }
    return w;
  }
};

inline std::vector<int> DefaultClientSweep() {
  if (FastMode()) return {1, 8, 32, 96};
  return {1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 192, 256};
}

// The paper's testbed: up to 11 client machines (§6.2). Client tasks are
// round-robined over these hosts so client-side link bandwidth is shared
// realistically.
constexpr int kClientHosts = 11;

inline std::vector<net::HostId> AddClientHosts(net::Fabric& fabric) {
  std::vector<net::HostId> hosts;
  for (int i = 0; i < kClientHosts; ++i) {
    hosts.push_back(fabric.AddHost("client-host-" + std::to_string(i)));
  }
  return hosts;
}

// Runs `n_clients` closed-loop clients, each repeatedly invoking
// `one_op(client_index, recorder)` until the measurement window closes.
// `one_op` must record its own completion. Returns the LoadPoint row.
//
// The factory is invoked once per client on the *simulation* side; clients
// self-terminate when Now() passes the window end.
using ClientLoop =
    std::function<sim::Task<void>(int client_index, workload::Recorder*)>;

inline workload::LoadPoint RunClosedLoop(sim::Simulator& sim,
                                         int n_clients,
                                         const BenchWindows& windows,
                                         const ClientLoop& loop) {
  const sim::TimePoint start = sim.Now() + windows.warmup;
  const sim::TimePoint end = start + windows.measure;
  auto recorder = std::make_unique<workload::Recorder>(&sim, start, end);
  sim::TaskTracker tracker;
  for (int c = 0; c < n_clients; ++c) {
    sim::Spawn(loop(c, recorder.get()), &tracker);
  }
  sim.RunUntil(end + sim::Millis(20));  // drain tail + reclamation traffic
  sim.Run();
  PRISM_CHECK_EQ(tracker.live(), 0);
  return workload::MakeLoadPoint(n_clients, *recorder);
}

// Observability flags shared by every figure driver (and the chaos
// harness): --trace=PATH attaches a span tracer to one sweep cell and
// writes Chrome trace-event JSON there; --metrics dumps a per-point
// metrics-registry snapshot to results/METRICS_<bench>.json. Both are off
// by default and — by construction, asserted in obs_determinism_test —
// perturb neither the (when,seq) event replay nor any bench output.
struct ObsOptions {
  std::string trace_path;  // empty = tracing off
  bool metrics = false;

  bool enabled() const { return metrics || !trace_path.empty(); }
};

inline ObsOptions ObsFromArgs(int argc, char** argv) {
  ObsOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--trace=", 0) == 0) {
      o.trace_path = std::string(arg.substr(8));
    } else if (arg == "--metrics") {
      o.metrics = true;
    }
  }
  return o;
}

// 8-byte dense key encoding used by all benches (the paper's 8-byte keys).
inline std::string KeyOf(uint64_t i) {
  std::string k(8, '\0');
  prism::StoreU64(reinterpret_cast<uint8_t*>(k.data()), i);
  return k;
}

// Minimal JSON emitter for the machine-readable bench artifacts
// (results/BENCH_*.json). Nested objects/arrays with automatic comma
// placement; strings are escaped; no external dependencies. Keys are passed
// to the Begin*/scalar calls (pass none for array elements).
class JsonWriter {
 public:
  JsonWriter& BeginObject(std::string_view key = {}) {
    Prefix(key);
    out_ += '{';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray(std::string_view key = {}) {
    Prefix(key);
    out_ += '[';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Field(std::string_view key, std::string_view v) {
    Prefix(key);
    Quote(v);
    return *this;
  }
  JsonWriter& Field(std::string_view key, const char* v) {
    return Field(key, std::string_view(v));
  }
  JsonWriter& Field(std::string_view key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    Prefix(key);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(std::string_view key, uint64_t v) {
    Prefix(key);
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Field(std::string_view key, int64_t v) {
    Prefix(key);
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Field(std::string_view key, int v) {
    return Field(key, static_cast<int64_t>(v));
  }
  JsonWriter& Field(std::string_view key, bool v) {
    Prefix(key);
    out_ += v ? "true" : "false";
    return *this;
  }

  const std::string& str() const { return out_; }

  // Writes the document to `path`, creating parent directories as needed.
  // Returns false (and prints to stderr) on IO failure.
  bool WriteFile(const std::string& path) const {
    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "JsonWriter: cannot open %s\n", path.c_str());
      return false;
    }
    f << out_ << '\n';
    return f.good();
  }

 private:
  void Prefix(std::string_view key) {
    if (!fresh_.empty()) {
      if (!fresh_.back()) out_ += ',';
      fresh_.back() = false;
    }
    if (!key.empty()) {
      Quote(key);
      out_ += ':';
    }
  }
  JsonWriter& Close(char c) {
    fresh_.pop_back();
    out_ += c;
    return *this;
  }
  void Quote(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open scope: no members emitted yet
};

}  // namespace prism::bench

#endif  // PRISM_BENCH_BENCH_COMMON_H_
