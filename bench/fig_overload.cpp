// Overload figure (no paper counterpart; ROADMAP item 2): latency vs
// offered load under open-loop traffic, PRISM-KV vs Pilaf, with and
// without verb-layer doorbell batching + completion coalescing.
//
// Methodology: per client host, an OpenLoopPool of compact 16-byte client
// state machines (1M logical clients total; 100k in fast mode) driven by a
// seeded arrival process (--arrival=poisson|mmpp|diurnal). Latency is
// measured from *arrival* to completion, so client-side queueing is part
// of every sample — below saturation the curves are flat, past it p99/p999
// explode while throughput plateaus; PRISM's fewer round trips per op push
// its knee to higher offered load than Pilaf's.
//
// The batched series shares one VerbBatcher per client host
// (doorbell_batch = cq_moderation = 8, 2 µs flush timers). The driver
// asserts, from the complexity accountant, that batching leaves
// round_trips per op unchanged while cutting client-side verb-layer CPU
// actions (doorbells + cq_polls) per op at the highest offered load.
//
// --guard=N runs the flat-memory CI guard instead of the figure: two
// single-point runs (N/8 then N clients) bound the *marginal* RSS per
// client at ≤64 B (plus the 16 B/client state array asserted exactly).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "bench/kv_bench_lib.h"
#include "src/harness/sweep.h"
#include "src/rdma/batch.h"
#include "src/workload/arrival.h"
#include "src/workload/open_loop.h"

namespace prism::bench {
namespace {

constexpr double kReadFrac = 0.95;

// Resident set size from /proc; 0 where unsupported.
size_t VmRssBytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

struct OverloadConfig {
  const char* system = "kv";
  bool batched = false;
  double offered_mops = 1.0;
  uint64_t n_clients = 0;
  workload::ArrivalKind kind = workload::ArrivalKind::kPoisson;
  BenchWindows windows;
  uint64_t seed = 1;
  // Bounded in-flight window per host (a real client library's QP-depth /
  // credit limit). Past saturation the excess load queues in the client
  // backlog rather than inside the fabric: by Little's law 32*11 in-flight
  // ops at the ~8 Mops service plateau spend ~45 µs in flight, so the
  // multi-hundred-µs post-knee p999 is backlog_wait, which is what the
  // attribution layer (and tools/latency_report) must show.
  int workers_per_host = 32;
  // When set, VmRSS is sampled at the end of the run while the rigs are
  // still live (the --guard path).
  size_t* live_rss_out = nullptr;
};

uint64_t DefaultClients() { return FastMode() ? 100'000 : 1'000'000; }

std::vector<double> OfferedSweepMops() {
  if (FastMode()) return {1, 4, 12};
  return {1, 2, 4, 8, 16, 24};
}

workload::ArrivalSpec SpecOf(workload::ArrivalKind kind, double ops_per_sec) {
  switch (kind) {
    case workload::ArrivalKind::kPoisson:
      return workload::ArrivalSpec::Poisson(ops_per_sec);
    case workload::ArrivalKind::kMmpp:
      return workload::ArrivalSpec::Mmpp(ops_per_sec);
    case workload::ArrivalKind::kDiurnal:
      return workload::ArrivalSpec::Diurnal(ops_per_sec);
  }
  return workload::ArrivalSpec::Poisson(ops_per_sec);
}

// Builds per-host pools over `make_client`-created KV clients (one GET and
// one PUT client per host so per-op-class tallies stay separable), runs the
// simulation, merges the per-pool histograms losslessly, and files the
// per-class complexity aggregates with the fabric's accountant.
template <typename ClientT, typename MakeClient>
workload::LoadPoint DriveOverload(sim::Simulator& sim, net::Fabric& fabric,
                                  const OverloadConfig& cfg,
                                  const MakeClient& make_client,
                                  obs::PointObs* pobs = nullptr) {
  const uint64_t keys = BenchKeyCount();
  auto client_hosts = AddClientHosts(fabric);
  const size_t n_hosts = client_hosts.size();
  struct HostRig {
    std::unique_ptr<rdma::VerbBatcher> batcher;
    std::unique_ptr<ClientT> get_client;
    std::unique_ptr<ClientT> put_client;
    std::unique_ptr<workload::OpenLoopPool> pool;
  };
  std::vector<HostRig> rigs(n_hosts);
  const sim::TimePoint measure_start = sim.Now() + cfg.windows.warmup;
  const sim::TimePoint end = measure_start + cfg.windows.measure;
  Rng master(cfg.seed);
  const double rate_per_host =
      cfg.offered_mops * 1e6 / static_cast<double>(n_hosts);
  uint64_t remaining = cfg.n_clients;
  for (size_t h = 0; h < n_hosts; ++h) {
    HostRig& rig = rigs[h];
    if (cfg.batched) {
      rig.batcher = std::make_unique<rdma::VerbBatcher>(
          &sim, &fabric.cost(), rdma::BatchOptions::Batched());
    }
    rig.get_client = make_client(client_hosts[h]);
    rig.put_client = make_client(client_hosts[h]);
    if (rig.batcher != nullptr) {
      rig.get_client->set_batcher(rig.batcher.get());
      rig.put_client->set_batcher(rig.batcher.get());
    }
    const uint64_t n_here = remaining / (n_hosts - h);
    remaining -= n_here;
    workload::PoolOptions popts;
    popts.workers = cfg.workers_per_host;
    rig.pool = std::make_unique<workload::OpenLoopPool>(
        &sim, SpecOf(cfg.kind, rate_per_host), n_here, master.Fork(), popts);
    if (pobs != nullptr && pobs->timelines != nullptr) {
      rig.pool->set_timelines(pobs->timelines, &fabric.obs(), client_hosts[h]);
    }
    ClientT* gc = rig.get_client.get();
    ClientT* pc = rig.put_client.get();
    net::Fabric* fb = &fabric;
    // Every loaded key stays reachable through any interleaving: PRISM-KV's
    // install CAS is atomic and each PUT chain stages its swap operand in a
    // private scratch lease, so a failed GET here is table corruption, not
    // queueing — check it hard.
    rig.pool->AddClass(
        "kv.get", kReadFrac,
        [gc, keys, cfg](uint64_t draw, obs::OpTimeline*) -> sim::Task<void> {
          auto r = co_await gc->Get(KeyOf(draw % keys));
          PRISM_CHECK(r.ok())
              << r.status() << " key=" << (draw % keys)
              << " system=" << cfg.system << " offered=" << cfg.offered_mops
              << " batched=" << cfg.batched;
        });
    rig.pool->AddClass(
        "kv.put", 1.0 - kReadFrac,
        [pc, keys, cfg, &sim, fb](uint64_t draw,
                                  obs::OpTimeline* op) -> sim::Task<void> {
          for (int attempt = 0;; ++attempt) {
            Status s = co_await pc->Put(KeyOf(draw % keys),
                                        Bytes(kBenchValueSize, 0x22));
            if (s.ok()) break;
            // Overload can transiently exhaust version buffers while
            // reclamation RPCs drain; back off one op-service-time.
            PRISM_CHECK(attempt < 8 && s.code() == Code::kResourceExhausted)
                << s << " key=" << (draw % keys) << " system=" << cfg.system
                << " offered=" << cfg.offered_mops
                << " batched=" << cfg.batched << " attempt=" << attempt;
            co_await sim::SleepFor(&sim, sim::Micros(20));
            // The sleep suspended us: re-arm the timed-op register before
            // the retry so the next Put attributes to this op.
            if (op != nullptr) fb->obs().SetCurrentOp(op);
          }
        });
    rig.pool->Start(measure_start, end);
  }
  sim.RunUntil(end + sim::Millis(20));  // drain backlog tail + reclamation
  sim.Run();

  LatencyHistogram all;
  uint64_t measured_arrivals = 0;
  uint64_t total_clients = 0;
  for (size_t c = 0; c < 2; ++c) {
    LatencyHistogram cls_hist;
    obs::TransportTally tally;
    uint64_t n_ops = 0;
    for (HostRig& rig : rigs) {
      cls_hist.Merge(rig.pool->recorder(c).hist());
      n_ops += rig.pool->class_completions(c);
      ClientT* cl = c == 0 ? rig.get_client.get() : rig.put_client.get();
      tally += cl->TransportTally();
    }
    fabric.obs().ops().RecordN(rigs[0].pool->class_name(c), n_ops, tally);
    all.Merge(cls_hist);
  }
  for (HostRig& rig : rigs) {
    rig.pool->CheckDrained();
    measured_arrivals += rig.pool->measured_arrivals();
    total_clients += rig.pool->n_clients();
    PRISM_CHECK_LE(rig.pool->state_bytes() / rig.pool->n_clients(), 64u);
    if constexpr (requires(ClientT* cl) { cl->FlushReclaim(); }) {
      rig.get_client->FlushReclaim();
      rig.put_client->FlushReclaim();
    }
  }
  sim.Run();  // flushed reclamation notifications

  const double seconds = sim::ToSeconds(end - measure_start);
  workload::LoadPoint p;
  p.clients = static_cast<int>(total_clients);
  const auto s = all.Summarize();
  p.tput_mops = static_cast<double>(s.count) / seconds / 1e6;
  p.offered_mops =
      static_cast<double>(measured_arrivals) / seconds / 1e6;
  p.mean_us = s.mean_us;
  p.p50_us = s.p50_us;
  p.p99_us = s.p99_us;
  p.p999_us = s.p999_us;
  p.sim_events = sim.executed_events();
  p.ops = fabric.obs().ops().Collect();
  // Sampled with every pool, client, and histogram still resident so the
  // guard's two samples share their fixed footprint.
  if (cfg.live_rss_out != nullptr) *cfg.live_rss_out = VmRssBytes();
  return p;
}

workload::LoadPoint RunPrismOverloadPoint(const OverloadConfig& cfg,
                                          obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  net::HostId server_host = fabric.AddHost("kv-server");
  kv::PrismKvOptions opts;
  const uint64_t keys = BenchKeyCount();
  opts.n_buckets = keys;
  opts.n_buffers = keys + 4096;
  opts.dense_key_hash = true;
  kv::PrismKvServer server(&fabric, server_host, opts);
  for (uint64_t k = 0; k < keys; ++k) {
    PRISM_CHECK(server
                    .LoadKey(BytesOfString(KeyOf(k)),
                             Bytes(kBenchValueSize, 0x11))
                    .ok());
  }
  auto make_client = [&](net::HostId host) {
    return std::make_unique<kv::PrismKvClient>(&fabric, host, &server);
  };
  workload::LoadPoint p =
      DriveOverload<kv::PrismKvClient>(sim, fabric, cfg, make_client, pobs);
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

workload::LoadPoint RunPilafOverloadPoint(const OverloadConfig& cfg,
                                          obs::PointObs* pobs = nullptr) {
  sim::Simulator sim;
  net::Fabric fabric(&sim, net::CostModel::EvalCluster40G());
  if (pobs != nullptr) fabric.AttachTracer(pobs->tracer);
  net::HostId server_host = fabric.AddHost("pilaf-server");
  kv::PilafOptions opts;
  const uint64_t keys = BenchKeyCount();
  opts.n_buckets = keys;
  opts.n_extents = keys + 4096;
  opts.backend = rdma::Backend::kHardwareNic;
  opts.dense_key_hash = true;
  kv::PilafServer server(&fabric, server_host, opts);
  for (uint64_t k = 0; k < keys; ++k) {
    PRISM_CHECK(server
                    .LoadKey(BytesOfString(KeyOf(k)),
                             Bytes(kBenchValueSize, 0x11))
                    .ok());
  }
  auto make_client = [&](net::HostId host) {
    return std::make_unique<kv::PilafClient>(&fabric, host, &server);
  };
  workload::LoadPoint p =
      DriveOverload<kv::PilafClient>(sim, fabric, cfg, make_client, pobs);
  if (pobs != nullptr) {
    if (pobs->tracer != nullptr) pobs->host_names = fabric.HostNames();
    if (pobs->want_metrics) pobs->snapshot = fabric.obs().metrics().Snapshot();
  }
  return p;
}

const obs::OpStats* FindOp(const workload::LoadPoint& p,
                           const std::string& op) {
  for (const obs::OpStats& os : p.ops) {
    if (os.op == op) return &os;
  }
  return nullptr;
}

// Acceptance assertions at the highest offered load: batching must leave
// round trips per op unchanged (protocol shape untouched) while reducing
// client-side verb-layer CPU actions per op.
void AssertBatchingInvariant(const std::string& system,
                             const workload::LoadPoint& plain,
                             const workload::LoadPoint& batched) {
  for (const char* op : {"kv.get", "kv.put"}) {
    const obs::OpStats* a = FindOp(plain, op);
    const obs::OpStats* b = FindOp(batched, op);
    PRISM_CHECK(a != nullptr && a->count > 0) << system << " " << op;
    PRISM_CHECK(b != nullptr && b->count > 0) << system << " " << op;
    const double rt_a = static_cast<double>(a->totals.round_trips) /
                        static_cast<double>(a->count);
    const double rt_b = static_cast<double>(b->totals.round_trips) /
                        static_cast<double>(b->count);
    PRISM_CHECK_LE(std::abs(rt_a - rt_b), 0.02 * rt_a)
        << system << " " << op << ": batching changed round trips per op ("
        << rt_a << " -> " << rt_b << ")";
    const double cpu_a = static_cast<double>(a->totals.client_cpu_actions()) /
                         static_cast<double>(a->count);
    const double cpu_b = static_cast<double>(b->totals.client_cpu_actions()) /
                         static_cast<double>(b->count);
    PRISM_CHECK_LT(cpu_b, 0.9 * cpu_a)
        << system << " " << op
        << ": batching failed to amortize client CPU actions per op ("
        << cpu_a << " -> " << cpu_b << ")";
    std::printf(
        "overload-assert %-10s %-6s rt/op %.3f->%.3f client-cpu/op "
        "%.3f->%.3f\n",
        system.c_str(), op, rt_a, rt_b, cpu_a, cpu_b);
  }
}

// CI guard: marginal resident memory per client must stay ≤64 B. Two runs
// bound the marginal cost, with RSS sampled while each run's rigs are still
// live: both samples then contain the fixed footprint (server pools,
// fabric, worker frames, event pools), so it cancels out of the marginal.
// Sampling after teardown instead leaves the number hostage to whether the
// allocator returned the freed arena to the OS — glibc's dynamic mmap
// threshold makes that nondeterministic run to run.
int RunGuard(uint64_t n_clients) {
  OverloadConfig cfg;
  cfg.batched = true;
  cfg.offered_mops = 2.0;
  cfg.windows.warmup = sim::Millis(0.2);
  cfg.windows.measure = sim::Millis(1.0);
  cfg.seed = 42;
  const uint64_t small = n_clients / 8 > 0 ? n_clients / 8 : 1;
  size_t live_small = 0;
  size_t live_big = 0;
  cfg.n_clients = small;
  cfg.live_rss_out = &live_small;
  workload::LoadPoint warm = RunPrismOverloadPoint(cfg);
  PRISM_CHECK_GT(warm.tput_mops, 0.0);
  cfg.n_clients = n_clients;
  cfg.seed = 43;
  cfg.live_rss_out = &live_big;
  workload::LoadPoint big = RunPrismOverloadPoint(cfg);
  PRISM_CHECK_GT(big.tput_mops, 0.0);
  std::printf("guard: %llu clients, tput %.3f Mops, p999 %.2f us\n",
              static_cast<unsigned long long>(n_clients), big.tput_mops,
              big.p999_us);
  if (live_small > 0 && live_big > 0) {
    const size_t grown = live_big > live_small ? live_big - live_small : 0;
    const double per_client =
        static_cast<double>(grown) / static_cast<double>(n_clients - small);
    std::printf(
        "guard: marginal rss %.2f B/client (%zu B over %llu clients)\n",
        per_client, grown, static_cast<unsigned long long>(n_clients - small));
    PRISM_CHECK_LE(per_client, 64.0)
        << "open-loop per-client memory exceeds the 64 B/client budget";
  } else {
    std::printf("guard: rss measurement unsupported on this platform; "
                "state-array bound only\n");
  }
  std::printf("guard: ok (state array %zu B/client)\n",
              sizeof(workload::ClientSlot));
  return 0;
}

int Main(int argc, char** argv) {
  using workload::PrintHeader;
  using workload::PrintRow;
  uint64_t guard_clients = 0;
  workload::ArrivalKind kind = workload::ArrivalKind::kPoisson;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--guard=", 8) == 0) {
      guard_clients = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--arrival=", 10) == 0) {
      PRISM_CHECK(workload::ParseArrivalKind(argv[i] + 10, &kind))
          << "unknown --arrival " << argv[i] + 10;
    }
  }
  if (guard_clients > 0) return RunGuard(guard_clients);

  const int jobs = harness::JobsFromArgs(argc, argv);
  const ObsOptions obs_opts = ObsFromArgs(argc, argv);
  const BenchWindows windows = BenchWindows::Default();
  const uint64_t n_clients = DefaultClients();
  const std::vector<double> sweep = OfferedSweepMops();

  struct Series {
    const char* name;
    bool prism;
    bool batched;
  };
  const std::vector<Series> series = {
      {"Pilaf", false, false},
      {"Pilaf (batched)", false, true},
      {"PRISM-KV", true, false},
      {"PRISM-KV (batched)", true, true},
  };
  ObsRig rig(obs_opts, series.size() * sweep.size());
  std::vector<SweepCell> cells;
  size_t slot = 0;
  for (size_t si = 0; si < series.size(); ++si) {
    for (size_t li = 0; li < sweep.size(); ++li) {
      OverloadConfig cfg;
      cfg.system = series[si].name;
      cfg.batched = series[si].batched;
      cfg.offered_mops = sweep[li];
      cfg.n_clients = n_clients;
      cfg.kind = kind;
      cfg.windows = windows;
      cfg.seed = 1000 * (si + 1) + li;
      obs::PointObs* po = rig.at(slot++);
      const bool prism = series[si].prism;
      cells.push_back({series[si].name,
                       [cfg, prism, po] {
                         return prism ? RunPrismOverloadPoint(cfg, po)
                                      : RunPilafOverloadPoint(cfg, po);
                       },
                       sweep[li]});
    }
  }
  const std::string title =
      std::string("Overload: latency vs offered load, open-loop ") +
      workload::ArrivalSpec{kind}.KindName() + " arrivals";
  FigureReporter reporter("fig_overload", title);
  std::vector<workload::LoadPoint> rows =
      RunFigureSweep(reporter, cells, jobs);
  PrintHeader(title, "offered(Mops)");
  for (size_t i = 0; i < cells.size(); ++i) {
    char extra[32];
    std::snprintf(extra, sizeof(extra), "%10.3f", rows[i].offered_mops);
    PrintRow(cells[i].series, rows[i], extra);
  }
  reporter.WriteUnified();
  rig.Finish("fig_overload", cells);

  // Acceptance: compare plain vs batched at the highest offered load.
  const size_t top = sweep.size() - 1;
  AssertBatchingInvariant("Pilaf", rows[0 * sweep.size() + top],
                          rows[1 * sweep.size() + top]);
  AssertBatchingInvariant("PRISM-KV", rows[2 * sweep.size() + top],
                          rows[3 * sweep.size() + top]);
  return 0;
}

}  // namespace
}  // namespace prism::bench

int main(int argc, char** argv) { return prism::bench::Main(argc, argv); }
