// Figure 9: PRISM-TX vs FaRM, throughput vs average latency, YCSB-T
// read-modify-write transactions, uniform access, single shard (full
// distributed commit protocol).
//
// Paper shape: PRISM-TX commits in two one-sided rounds (+1 execution read)
// and lands ≈5.5 µs faster than FaRM, whose commit needs two RPC phases of
// server CPU; PRISM-TX also reaches ~1 M more txn/s before saturating.
#include "bench/tx_bench_lib.h"
#include "src/harness/sweep.h"

int main(int argc, char** argv) {
  prism::bench::RunTxTputFigure("fig9_tx_tput",
                                prism::harness::JobsFromArgs(argc, argv),
                                prism::bench::ObsFromArgs(argc, argv));
  return 0;
}
