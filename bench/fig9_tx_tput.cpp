// Figure 9: PRISM-TX vs FaRM, throughput vs average latency, YCSB-T
// read-modify-write transactions, uniform access, single shard (full
// distributed commit protocol).
//
// Paper shape: PRISM-TX commits in two one-sided rounds (+1 execution read)
// and lands ≈5.5 µs faster than FaRM, whose commit needs two RPC phases of
// server CPU; PRISM-TX also reaches ~1 M more txn/s before saturating.
#include "bench/tx_bench_lib.h"

int main() {
  using namespace prism;
  using namespace prism::bench;
  BenchWindows windows = BenchWindows::Default();
  workload::PrintHeader(
      "Figure 9: transactions, YCSB-T RMW, uniform, single shard",
      "abort%");
  auto AbortStr = [](const workload::LoadPoint& p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.2f%%", p.abort_rate * 100);
    return std::string(buf);
  };
  for (int n : DefaultClientSweep()) {
    auto p = RunFarmPoint(n, 0.0, rdma::Backend::kHardwareNic, windows,
                          900 + static_cast<uint64_t>(n));
    workload::PrintRow("FaRM", p, AbortStr(p));
  }
  for (int n : DefaultClientSweep()) {
    auto p = RunFarmPoint(n, 0.0, rdma::Backend::kSoftwareStack, windows,
                          910 + static_cast<uint64_t>(n));
    workload::PrintRow("FaRM (software RDMA)", p, AbortStr(p));
  }
  for (int n : DefaultClientSweep()) {
    auto p = RunPrismTxPoint(n, 0.0, windows, 920 + static_cast<uint64_t>(n));
    workload::PrintRow("PRISM-TX", p, AbortStr(p));
  }
  return 0;
}
