// Figure 3: PRISM-KV vs Pilaf, throughput vs average latency, 100% reads
// (YCSB-C), uniform key distribution, 512 B values.
//
// Paper shape: PRISM-KV reads at ~6 µs (one indirect READ) vs ~8 µs for
// hardware-RDMA Pilaf (2 READs + CRCs) and ~14 µs for software-RDMA Pilaf;
// PRISM-KV also sustains ~22% more read throughput because its GET moves
// fewer bytes per request (one response instead of two, no CRCs).
#include "bench/kv_bench_lib.h"
#include "src/harness/sweep.h"

int main(int argc, char** argv) {
  prism::bench::RunKvFigure(
      "fig3_kv_read", "Figure 3: KV store, 100% reads, uniform (YCSB-C)",
      /*read_frac=*/1.0, prism::harness::JobsFromArgs(argc, argv),
      prism::bench::ObsFromArgs(argc, argv));
  return 0;
}
