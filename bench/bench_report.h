// Machine-readable figure artifacts: results/BENCH_figs.json.
//
// Every converted bench driver funnels its sweep results through a
// FigureReporter, which appends/replaces this driver's entry in one unified
// document (alongside results/BENCH_sim.json from abl_sim_micro). The
// document maps bench name -> figure entry:
//
//   {
//   "fig3_kv_read": {"title": ..., "fast_mode": ..., "jobs": N,
//                    "wall_seconds": ..., "sim_events": ...,
//                    "events_per_sec": ..., "series": [
//                      {"name": "Pilaf", "points": [{"clients": 1, ...}]}]},
//   "fig6_rs_tput": {...}
//   }
//
// The file is written one entry per line so drivers can merge without a
// JSON parser: on write, lines whose top-level key differs from this
// driver's are kept verbatim, this driver's entry is replaced, and entries
// are sorted by key. The whole document stays valid JSON (validated by
// scripts/bench_smoke.cmake via CMake's string(JSON)).
#ifndef PRISM_BENCH_BENCH_REPORT_H_
#define PRISM_BENCH_BENCH_REPORT_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/sweep.h"
#include "src/obs/obs.h"
#include "src/obs/timeline.h"
#include "src/workload/driver.h"

namespace prism::bench {

class FigureReporter {
 public:
  FigureReporter(std::string bench_name, std::string title)
      : bench_(std::move(bench_name)), title_(std::move(title)) {}

  // Appends one sweep row under `series` (created on first use; series keep
  // insertion order). `x` is the swept coordinate when it is not the client
  // count (Zipf theta, chain length, batch size, ...).
  void AddRow(const std::string& series, const workload::LoadPoint& p,
              double x = std::nan("")) {
    SeriesData& s = SeriesOf(series);
    s.points.push_back(p);
    s.x.push_back(x);
  }

  // Sweep-level execution metrics: wall-clock of the RunSweep call and the
  // job count it ran with. Simulated events are summed from the rows.
  void SetSweepMetrics(double wall_seconds, int jobs) {
    wall_seconds_ = wall_seconds;
    jobs_ = jobs;
  }

  uint64_t TotalSimEvents() const {
    uint64_t total = 0;
    for (const SeriesData& s : series_) {
      for (const workload::LoadPoint& p : s.points) total += p.sim_events;
    }
    return total;
  }

  // Serializes this driver's entry as a single `"name": {...}` line.
  std::string EntryLine() const {
    JsonWriter w;
    w.BeginObject(bench_);
    w.Field("title", title_);
    w.Field("fast_mode", FastMode());
    w.Field("jobs", jobs_);
    w.Field("wall_seconds", wall_seconds_);
    const uint64_t events = TotalSimEvents();
    w.Field("sim_events", events);
    w.Field("events_per_sec",
            wall_seconds_ > 0 ? static_cast<double>(events) / wall_seconds_
                              : 0.0);
    w.BeginArray("series");
    for (const SeriesData& s : series_) {
      w.BeginObject();
      w.Field("name", s.name);
      w.BeginArray("points");
      for (size_t i = 0; i < s.points.size(); ++i) {
        const workload::LoadPoint& p = s.points[i];
        w.BeginObject();
        if (!std::isnan(s.x[i])) w.Field("x", s.x[i]);
        w.Field("clients", p.clients);
        w.Field("tput_mops", p.tput_mops);
        if (p.offered_mops > 0) w.Field("offered_mops", p.offered_mops);
        w.Field("mean_us", p.mean_us);
        w.Field("p50_us", p.p50_us);
        w.Field("p99_us", p.p99_us);
        w.Field("p999_us", p.p999_us);
        w.Field("abort_rate", p.abort_rate);
        w.Field("sim_events", p.sim_events);
        if (!p.ops.empty()) {
          // Table-1-style protocol-complexity accounting (§4.3): totals and
          // per-op averages for every operation type this point executed.
          w.BeginArray("ops");
          for (const obs::OpStats& os : p.ops) {
            const double n = static_cast<double>(os.count);
            w.BeginObject();
            w.Field("op", os.op);
            w.Field("count", os.count);
            w.Field("round_trips", os.totals.round_trips);
            w.Field("messages", os.totals.messages);
            w.Field("bytes_out", os.totals.bytes_out);
            w.Field("bytes_in", os.totals.bytes_in);
            w.Field("cpu_actions", os.totals.cpu_actions);
            w.Field("doorbells", os.totals.doorbells);
            w.Field("cq_polls", os.totals.cq_polls);
            if (os.count > 0) {
              w.Field("round_trips_per_op",
                      static_cast<double>(os.totals.round_trips) / n);
              w.Field("messages_per_op",
                      static_cast<double>(os.totals.messages) / n);
              w.Field("bytes_per_op",
                      static_cast<double>(os.totals.bytes_out +
                                          os.totals.bytes_in) / n);
              w.Field("cpu_actions_per_op",
                      static_cast<double>(os.totals.cpu_actions) / n);
              // Client-side verb-layer CPU actions (doorbell rings + CQ
              // drains): the per-op quantity doorbell batching and
              // completion coalescing drive below 2.0.
              w.Field("doorbells_per_op",
                      static_cast<double>(os.totals.doorbells) / n);
              w.Field("cq_polls_per_op",
                      static_cast<double>(os.totals.cq_polls) / n);
              w.Field("client_cpu_actions_per_op",
                      static_cast<double>(os.totals.client_cpu_actions()) / n);
            }
            w.EndObject();
          }
          w.EndArray();
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }

  // Merges this entry into the unified document at `path` (default:
  // results/BENCH_figs.json relative to the working directory). Entries from
  // other drivers are preserved; the result is sorted by bench name.
  bool WriteUnified(const std::string& path = "results/BENCH_figs.json") const {
    std::vector<std::pair<std::string, std::string>> entries;  // key, line
    std::ifstream in(path);
    if (in) {
      std::string line;
      while (std::getline(in, line)) {
        const std::string key = TopLevelKey(line);
        if (!key.empty() && key != bench_) {
          if (!line.empty() && line.back() == ',') line.pop_back();
          entries.emplace_back(key, line);
        }
      }
    }
    entries.emplace_back(bench_, EntryLine());
    std::sort(entries.begin(), entries.end());

    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "FigureReporter: cannot open %s\n", path.c_str());
      return false;
    }
    out << "{\n";
    for (size_t i = 0; i < entries.size(); ++i) {
      out << entries[i].second;
      if (i + 1 < entries.size()) out << ',';
      out << '\n';
    }
    out << "}\n";
    return out.good();
  }

 private:
  struct SeriesData {
    std::string name;
    std::vector<workload::LoadPoint> points;
    std::vector<double> x;
  };

  SeriesData& SeriesOf(const std::string& name) {
    for (SeriesData& s : series_) {
      if (s.name == name) return s;
    }
    series_.push_back(SeriesData{name, {}, {}});
    return series_.back();
  }

  // Extracts the quoted top-level key of a `"key": {...}` line; empty for
  // the brace lines and anything unrecognized (dropped on rewrite).
  static std::string TopLevelKey(const std::string& line) {
    if (line.size() < 4 || line[0] != '"') return "";
    const size_t close = line.find('"', 1);
    if (close == std::string::npos) return "";
    if (line.find(':', close) == std::string::npos) return "";
    return line.substr(1, close - 1);
  }

  std::string bench_;
  std::string title_;
  std::vector<SeriesData> series_;
  double wall_seconds_ = 0;
  int jobs_ = 1;
};

// One cell of a figure sweep: a labeled, self-contained simulation factory.
// `x` is the swept coordinate when it is not the client count.
struct SweepCell {
  std::string series;
  harness::SweepPoint<workload::LoadPoint> run;
  double x = std::nan("");
};

// Per-sweep observability rig: owns one obs::PointObs per cell (stable
// addresses — the vector is sized up front, so --jobs workers touch only
// their own slot) plus the tracer attached to cell 0 when --trace is given.
// Cell 0 is by convention the lightest point of the sweep (1 client), which
// makes span parenting exact — see src/obs/obs.h.
class ObsRig {
 public:
  ObsRig(const ObsOptions& opts, size_t n_cells)
      : opts_(opts), slots_(n_cells) {
    if (!opts_.trace_path.empty() && n_cells > 0) slots_[0].tracer = &tracer_;
    if (opts_.metrics) {
      for (obs::PointObs& s : slots_) s.want_metrics = true;
    }
    // Tail-latency attribution rides with tracing: EVERY cell gets its own
    // timeline store (deque = stable addresses; parallel sweep workers
    // touch only their own slot), so phase breakdowns cover the saturated
    // points, not just the traced cell. Only the traced cell's store can
    // pin exemplar span trees.
    if (!opts_.trace_path.empty()) {
      stores_.resize(n_cells);
      for (size_t i = 0; i < n_cells; ++i) {
        if (i == 0) stores_[i].SetTracer(&tracer_);
        slots_[i].timelines = &stores_[i];
      }
    }
  }

  // Slot for cell i (nullptr when neither --trace nor --metrics was given,
  // keeping the default path identical to pre-observability builds).
  obs::PointObs* at(size_t i) {
    return opts_.enabled() ? &slots_[i] : nullptr;
  }

  // Writes the trace JSON and the per-point metrics dump after the sweep.
  // `cells` labels the metrics entries; returns false on IO failure.
  bool Finish(const std::string& bench_name,
              const std::vector<SweepCell>& cells) {
    bool ok = true;
    if (!opts_.trace_path.empty() && !slots_.empty()) {
      ok = tracer_.WriteChromeJson(opts_.trace_path, slots_[0].host_names);
      if (ok) {
        std::printf("trace: %zu spans -> %s\n",
                    tracer_.finished_count() + tracer_.open_count(),
                    opts_.trace_path.c_str());
      }
    }
    if (opts_.metrics) {
      JsonWriter w;
      w.BeginObject();
      w.Field("bench", bench_name);
      w.BeginArray("points");
      for (size_t i = 0; i < slots_.size() && i < cells.size(); ++i) {
        w.BeginObject();
        w.Field("series", cells[i].series);
        w.BeginArray("metrics");
        for (const obs::MetricValue& v : slots_[i].snapshot.values) {
          w.BeginObject();
          w.Field("component", v.component);
          w.Field("name", v.name);
          if (!v.host.empty()) w.Field("host", v.host);
          switch (v.kind) {
            case obs::MetricValue::Kind::kCounter:
              w.Field("counter", v.counter);
              break;
            case obs::MetricValue::Kind::kGauge:
              w.Field("gauge", v.gauge);
              break;
            case obs::MetricValue::Kind::kHistogram:
              w.Field("count", v.count);
              w.Field("mean_ns", v.mean_ns);
              w.Field("p50_ns", v.p50_ns);
              w.Field("p99_ns", v.p99_ns);
              w.Field("max_ns", v.max_ns);
              break;
          }
          w.EndObject();
        }
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
      const std::string path = "results/METRICS_" + bench_name + ".json";
      ok = w.WriteFile(path) && ok;
      std::printf("metrics: %zu points -> %s\n", slots_.size(), path.c_str());
    }
    if (!stores_.empty()) {
      ok = WriteAttribution(bench_name, cells) && ok;
      ok = WriteTimeSeries(bench_name, cells) && ok;
    }
    return ok;
  }

 private:
  // results/ATTRIB_<bench>.json: per point, per client class — the total
  // latency digest, exact per-phase time sums, per-phase tail percentiles,
  // and the slowest-K exemplars with their pinned span trees. This is the
  // input tools/latency_report attributes tails from.
  bool WriteAttribution(const std::string& bench_name,
                        const std::vector<SweepCell>& cells) const {
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", bench_name);
    w.BeginArray("phases");
    for (int ph = 0; ph < obs::kNumPhases; ++ph) {
      w.Field("", obs::PhaseName(ph));
    }
    w.EndArray();
    w.BeginArray("points");
    for (size_t i = 0; i < stores_.size() && i < cells.size(); ++i) {
      const obs::TimelineStore& st = stores_[i];
      w.BeginObject();
      w.Field("series", cells[i].series);
      if (!std::isnan(cells[i].x)) w.Field("x", cells[i].x);
      w.Field("started_ops", st.started_ops());
      w.Field("measured_ops", st.measured_ops());
      w.BeginArray("classes");
      for (size_t c = 0; c < st.n_classes(); ++c) {
        const LatencyHistogram::Summary total = st.total_hist(c).Summarize();
        w.BeginObject();
        w.Field("class", st.class_name(c));
        w.Field("count", total.count);
        w.Field("mean_us", total.mean_us);
        w.Field("p50_us", total.p50_us);
        w.Field("p99_us", total.p99_us);
        w.Field("p999_us", total.p999_us);
        w.BeginArray("phase_total_ns");
        for (int ph = 0; ph < obs::kNumPhases; ++ph) {
          w.Field("", st.phase_total_ns(c, ph));
        }
        w.EndArray();
        w.BeginArray("phase_p999_us");
        for (int ph = 0; ph < obs::kNumPhases; ++ph) {
          w.Field("", st.phase_hist(c, ph).Summarize().p999_us);
        }
        w.EndArray();
        w.BeginArray("exemplars");
        for (const obs::TimelineStore::Exemplar& e : st.exemplars(c)) {
          w.BeginObject();
          w.Field("seq", e.seq);
          w.Field("start_ns", e.start_ns);
          w.Field("end_ns", e.end_ns);
          w.Field("total_ns", e.total_ns());
          w.Field("retransmits", static_cast<uint64_t>(e.retransmits));
          w.BeginArray("phase_ns");
          for (int ph = 0; ph < obs::kNumPhases; ++ph) {
            w.Field("", e.phase_ns[ph]);
          }
          w.EndArray();
          if (!e.spans.empty()) {
            w.BeginArray("spans");
            for (const obs::SpanRecord& s : e.spans) {
              w.BeginObject();
              w.Field("id", s.id);
              w.Field("parent", s.parent);
              w.Field("name", s.name);
              w.Field("cat", s.cat);
              w.Field("host", static_cast<uint64_t>(s.host));
              w.Field("start_ns", s.start_ns);
              w.Field("end_ns", s.end_ns);
              w.EndObject();
            }
            w.EndArray();
          }
          w.EndObject();
        }
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    const std::string path = "results/ATTRIB_" + bench_name + ".json";
    const bool ok = w.WriteFile(path);
    std::printf("attrib: %zu points -> %s\n", stores_.size(), path.c_str());
    return ok;
  }

  // results/TS_<bench>.json: per point, fixed sim-time buckets of arrivals,
  // completions, retransmits, outstanding depth (running arrivals minus
  // completions), and per-phase completion-time sums.
  bool WriteTimeSeries(const std::string& bench_name,
                       const std::vector<SweepCell>& cells) const {
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", bench_name);
    w.BeginArray("phases");
    for (int ph = 0; ph < obs::kNumPhases; ++ph) {
      w.Field("", obs::PhaseName(ph));
    }
    w.EndArray();
    w.BeginArray("points");
    for (size_t i = 0; i < stores_.size() && i < cells.size(); ++i) {
      const obs::TimeSeries& ts = stores_[i].series();
      w.BeginObject();
      w.Field("series", cells[i].series);
      if (!std::isnan(cells[i].x)) w.Field("x", cells[i].x);
      w.Field("bucket_ns", ts.bucket_ns());
      w.BeginArray("buckets");
      int64_t outstanding = 0;
      for (const auto& [index, b] : ts.buckets()) {
        outstanding += static_cast<int64_t>(b.arrivals) -
                       static_cast<int64_t>(b.completions);
        w.BeginObject();
        w.Field("t_ns", index * ts.bucket_ns());
        w.Field("arrivals", b.arrivals);
        w.Field("completions", b.completions);
        w.Field("retransmits", b.retransmits);
        w.Field("outstanding", outstanding);
        w.Field("total_ns", b.total_ns);
        w.BeginArray("phase_ns");
        for (int ph = 0; ph < obs::kNumPhases; ++ph) {
          w.Field("", b.phase_ns[ph]);
        }
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    const std::string path = "results/TS_" + bench_name + ".json";
    const bool ok = w.WriteFile(path);
    std::printf("timeseries: %zu points -> %s\n", stores_.size(),
                path.c_str());
    return ok;
  }

  ObsOptions opts_;
  obs::Tracer tracer_;
  std::vector<obs::PointObs> slots_;
  std::deque<obs::TimelineStore> stores_;  // one per cell when tracing
};

// Fans the cells out through the sweep runner, records every row (in cell
// order) plus the sweep's wall-clock into `reporter`, and returns the rows
// cell-index-ordered. Printing stays with the caller so each figure keeps
// its own table format.
inline std::vector<workload::LoadPoint> RunFigureSweep(
    FigureReporter& reporter, const std::vector<SweepCell>& cells,
    int jobs) {
  std::vector<harness::SweepPoint<workload::LoadPoint>> points;
  points.reserve(cells.size());
  for (const SweepCell& c : cells) points.push_back(c.run);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<workload::LoadPoint> rows =
      harness::RunSweep(points, harness::SweepOptions{jobs});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (size_t i = 0; i < cells.size(); ++i) {
    reporter.AddRow(cells[i].series, rows[i], cells[i].x);
  }
  reporter.SetSweepMetrics(wall, jobs > 0 ? jobs : harness::DefaultJobs());
  return rows;
}

}  // namespace prism::bench

#endif  // PRISM_BENCH_BENCH_REPORT_H_
